package ddlog

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"holoclean/internal/dataset"
	"holoclean/internal/dc"
	"holoclean/internal/extdict"
	"holoclean/internal/factor"
	"holoclean/internal/partition"
	"holoclean/internal/pruning"
)

// Database holds the materialized relations of Section 4.1 that rule
// grounding joins over.
type Database struct {
	// DS is the dirty dataset: the Tuple and InitValue relations.
	DS *dataset.Dataset
	// Bounds are the bound denial constraints referenced by DC rules.
	Bounds []*dc.Bound
	// Domains is the Domain relation for noisy cells (query variables),
	// produced by Algorithm 2.
	Domains *pruning.Domains
	// Evidence lists the sampled clean cells that become evidence
	// variables for learning; EvidenceDomains are their candidate sets
	// (each must contain the observed value).
	Evidence        []dataset.Cell
	EvidenceDomains [][]dataset.Value
	// Features materializes HasFeature(t,a,f) lazily: the feature
	// identifiers of one cell. May be nil when no feature rule exists.
	Features func(c dataset.Cell) []string
	// SoftFeatures materializes real-valued features: per cell and
	// candidate-label vector, zero or more (weight key, h vector) pairs.
	// HoloClean uses one per cell carrying co-occurrence probabilities
	// with the weight tied per attribute. May be nil.
	SoftFeatures func(c dataset.Cell, dom []int32) []SoftFeature
	// DictPrior is the initial (learnable) reliability weight w(k) of
	// dictionary match factors.
	DictPrior float64
	// RelaxedDCPrior is the initial (learnable) weight of relaxed
	// denial-constraint features (Section 5.2) — the prior belief that
	// constraint violations indicate errors.
	RelaxedDCPrior float64
	// Matches is the Matched(t,a,d,k) relation.
	Matches []extdict.Match
	// Groups are the Algorithm 3 tuple groups; nil disables partitioning
	// even for rules that request it.
	Groups []partition.Group
	// GroupIndex is the dense constraint → tuple → group-id (-1 = none)
	// view of Groups, built once per run with BuildGroupIndex and shared
	// read-only by every shard grounder. Nil makes each grounder build
	// its own lazily (hand-wired databases, tests).
	GroupIndex [][]int32
	// Shared, when non-nil, supplies dataset-wide indexes shared across
	// the per-shard grounders of the sharded pipeline. Nil keeps the
	// original per-grounder lazy indexes (the monolithic path).
	Shared *SharedIndex
	// Interner, when non-nil, is the canonical tying-key store shared by
	// every graph grounded from this database (all shards of a run, and a
	// session's successive recleans). With it, grounding allocates each
	// distinct key string at most once per interner lifetime; the
	// per-factor key path in the hot loops never allocates at all.
	Interner *factor.KeyInterner
	// Scope, when non-nil, restricts DC-factor grounding to one shard:
	// pairs that reach a noisy tuple outside the shard are skipped (see
	// Scope). Nil grounds every pair (monolithic behavior).
	Scope *Scope
}

// Config tunes grounding.
type Config struct {
	// MaxScanCounterparts caps the counterpart tuples considered per cell
	// when a DC rule has no equality predicate to index on (0 =
	// unlimited). The cap is an approximation documented in DESIGN.md.
	MaxScanCounterparts int
	// FactorCells, when non-nil, restricts the per-cell factor rules
	// (features, minimality, matches, relaxed DCs) to cells it accepts.
	// Variables are still created for every cell, so domain-aware checks
	// (e.g. the weak-evidence discounts) see the full model. The sharded
	// pipeline grounds its learning graph with an evidence-only filter:
	// query cells become factorless domain stubs, and the evidence cells
	// carry exactly the factors they carry in a monolithic grounding.
	FactorCells func(c dataset.Cell) bool
	// Arena, when non-nil, supplies the grounder's scratch memory so
	// repeated groundings (per-shard, per-reclean) reuse backing arrays.
	// The returned Grounded borrows the arena's cell→variable map; see
	// Arena for the release contract.
	Arena *Arena
}

// wantFactors reports whether per-cell factor rules should ground factors
// anchored at cell c.
func (cfg *Config) wantFactors(c dataset.Cell) bool {
	return cfg.FactorCells == nil || cfg.FactorCells(c)
}

// Stats describes the grounded model. PaperFactors counts groundings the
// way Example 5 does — one factor per value combination of the involved
// random variables — while the compact in-memory representation stores
// one predicate factor per tuple pair and aggregates identical unary
// factors with multiplicities.
type Stats struct {
	Variables    int
	QueryVars    int
	EvidenceVars int
	UnaryFactors int
	NaryFactors  int
	PaperFactors int64
	PairsChecked int64
}

// SoftFeature is one real-valued feature of a cell: h values per
// candidate with a tied weight key. Init is the weight's starting value;
// learning adjusts it when evidence exists, but on workloads where error
// detection flags entire conflict groups (e.g. Flights) evidence is
// scarce and the prior carries the signal.
type SoftFeature struct {
	Key  string
	H    []float64
	Init float64
}

// CellVars is a dense cell → variable-id map: one slot per (tuple,
// attribute) pair of the dataset. It replaces the map[dataset.Cell]int32
// the grounder's per-pair loops used to probe, turning every lookup into
// one multiply-add and two array reads. Slots are validated by an epoch
// mark rather than cleared, so resetting a pooled instance between
// shard groundings is O(1) — a per-shard memset of a tuples×attrs array
// would make grounding cost O(dataset) per shard regardless of shard
// size.
type CellVars struct {
	attrs int
	ids   []int32
	mark  []int32
	epoch int32
}

// NewCellVars returns an all-empty map sized tuples×attrs.
func NewCellVars(tuples, attrs int) *CellVars {
	cv := &CellVars{}
	cv.reset(tuples, attrs)
	return cv
}

// reset resizes to tuples×attrs and invalidates every slot by bumping
// the epoch, reusing the backing arrays when their capacity suffices
// (the arena-pooling path).
func (cv *CellVars) reset(tuples, attrs int) {
	n := tuples * attrs
	cv.attrs = attrs
	if cap(cv.ids) >= n {
		cv.ids = cv.ids[:n]
		cv.mark = cv.mark[:n]
	} else {
		cv.ids = make([]int32, n)
		cv.mark = make([]int32, n)
		cv.epoch = 0
	}
	cv.epoch++
	if cv.epoch == 0 { // wrapped: stale marks may alias epoch 0
		clear(cv.mark)
		cv.epoch = 1
	}
}

// Get returns the variable id of cell c, if one exists.
func (cv *CellVars) Get(c dataset.Cell) (int32, bool) {
	i := c.Tuple*cv.attrs + c.Attr
	if cv.mark[i] != cv.epoch {
		return -1, false
	}
	return cv.ids[i], true
}

func (cv *CellVars) set(c dataset.Cell, v int32) {
	i := c.Tuple*cv.attrs + c.Attr
	cv.ids[i] = v
	cv.mark[i] = cv.epoch
}

// Grounded is the result of grounding a program: the factor graph plus
// the cell↔variable correspondence.
type Grounded struct {
	Graph *factor.Graph
	// Cells maps variable id → cell.
	Cells []dataset.Cell
	// VarOf maps cell → variable id (dense; see CellVars).
	VarOf *CellVars
	Stats Stats
}

// Domain returns the candidate labels of variable v as dataset values.
func (g *Grounded) Domain(v int32) []dataset.Value {
	labels := g.Graph.Vars[v].Domain
	out := make([]dataset.Value, len(labels))
	for i, l := range labels {
		out[i] = dataset.Value(l)
	}
	return out
}

// Arena is the reusable per-grounding scratch memory: the dense cell→var
// map, label/key build buffers, the relaxed-DC candidate counters, and an
// epoch-marked tuple set. The sharded pipeline pools arenas across its
// worker goroutines and across Session recleans (AcquireArena /
// ReleaseArena), so a steady stream of shard groundings reuses the same
// few backing arrays. A Grounded produced with an arena borrows the
// arena's CellVars: release the arena only after the grounded graph's
// VarOf is no longer needed.
type Arena struct {
	cellVars  CellVars
	labelBuf  []int32
	keyBuf    []byte
	counts    []int32
	seenMark  []int32
	seenEpoch int32
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// AcquireArena returns a pooled grounding arena, possibly warm.
func AcquireArena() *Arena { return arenaPool.Get().(*Arena) }

// ReleaseArena returns an arena to the pool. The caller must be done with
// every Grounded that borrowed it.
func ReleaseArena(a *Arena) { arenaPool.Put(a) }

// seen reports and records whether tuple t was already seen in the
// current epoch. Epoch bumping makes clearing O(1); the mark array is
// sized to the dataset once and reused.
func (a *Arena) seen(t int) bool {
	if a.seenMark[t] == a.seenEpoch {
		return true
	}
	a.seenMark[t] = a.seenEpoch
	return false
}

// nextSeen starts a fresh seen-set epoch for a dataset of n tuples.
// Marks are cleared to 0 and epoch 0 is never used, so a stale slot can
// only collide with a live epoch after a full wrap cycle — which passes
// through 0 and re-clears the array first. (Clearing to any reachable
// epoch value, like -1, would make stale slots falsely "seen" once the
// epoch counter reached it.)
func (a *Arena) nextSeen(n int) {
	if len(a.seenMark) < n {
		a.seenMark = make([]int32, n)
		a.seenEpoch = 0
	}
	a.seenEpoch++
	if a.seenEpoch == 0 { // wrapped
		clear(a.seenMark)
		a.seenEpoch = 1
	}
}

type grounder struct {
	db      *Database
	cfg     Config
	g       *factor.Graph
	out     *Grounded
	ar      *Arena
	sym     []int8                    // constraint → -1 unknown / 0 no / 1 symmetric under tuple swap
	grp     [][]int32                 // lazy local group index (nil until first sameGroup without db.GroupIndex)
	initIdx []map[dataset.Value][]int // attribute → initial value → tuples; nil = unbuilt
}

// Ground evaluates every rule of the program against the database and
// returns the factor graph. When cfg.Arena is non-nil the grounder draws
// its scratch structures from it (see Arena).
func Ground(db *Database, prog *Program, cfg Config) (*Grounded, error) {
	ar := cfg.Arena
	if ar == nil {
		ar = new(Arena)
	}
	ar.cellVars.reset(db.DS.NumTuples(), db.DS.NumAttrs())
	ar.nextSeen(db.DS.NumTuples())
	gr := &grounder{
		db:      db,
		cfg:     cfg,
		g:       factor.NewGraph(),
		ar:      ar,
		sym:     make([]int8, len(db.Bounds)),
		initIdx: make([]map[dataset.Value][]int, db.DS.NumAttrs()),
	}
	for i := range gr.sym {
		gr.sym[i] = -1
	}
	gr.g.Weights.Interner = db.Interner
	gr.out = &Grounded{Graph: gr.g, VarOf: &ar.cellVars}
	dict := db.DS.Dict()
	gr.g.Cmp = func(op uint8, a, b int32) bool {
		return dc.Compare(dc.Op(op), dict.String(dataset.Value(a)), dict.String(dataset.Value(b)))
	}

	// The random-variable rule must ground first; factor rules reference
	// the variables it creates.
	hasRV := false
	for _, r := range prog.Rules {
		if r.Kind == RandomVariables {
			gr.groundVariables()
			hasRV = true
			break
		}
	}
	if !hasRV && len(prog.Rules) > 0 {
		return nil, fmt.Errorf("ddlog: program has factor rules but no random-variable rule")
	}
	for _, r := range prog.Rules {
		switch r.Kind {
		case RandomVariables:
			// already grounded
		case FeatureFactors:
			gr.groundFeatures()
		case MatchedFactors:
			gr.groundMatches()
		case MinimalityFactors:
			gr.groundMinimality(r.FixedWeight)
		case DCFactors:
			if err := gr.groundDC(r); err != nil {
				return nil, err
			}
		case RelaxedDCFactors:
			if err := gr.groundRelaxedDC(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("ddlog: unknown rule kind %d", r.Kind)
		}
	}
	gr.out.Stats.Variables = len(gr.g.Vars)
	gr.out.Stats.UnaryFactors = len(gr.g.Unaries)
	gr.out.Stats.NaryFactors = len(gr.g.Naries)
	return gr.out, nil
}

// groundVariables creates one query variable per noisy cell and one
// evidence variable per sampled clean cell. Labels are staged in the
// arena's reusable buffer; AddVariable copies them into the graph's flat
// domain arena.
func (gr *grounder) groundVariables() {
	db := gr.db
	for i, c := range db.Domains.Cells {
		cands := db.Domains.Candidates[i]
		if len(cands) == 0 {
			continue // nothing to infer; cell keeps its value
		}
		labels := gr.ar.labelBuf[:0]
		obs := int32(-1)
		init := db.DS.Get(c.Tuple, c.Attr)
		for j, v := range cands {
			labels = append(labels, int32(v))
			if v == init && init != dataset.Null {
				obs = int32(j)
			}
		}
		gr.ar.labelBuf = labels
		v := gr.g.AddVariable(labels, false, obs)
		gr.out.VarOf.set(c, v)
		gr.out.Cells = append(gr.out.Cells, c)
		gr.out.Stats.QueryVars++
	}
	for i, c := range db.Evidence {
		if _, dup := gr.out.VarOf.Get(c); dup {
			continue // a cell cannot be both noisy and evidence
		}
		cands := db.EvidenceDomains[i]
		obsVal := db.DS.Get(c.Tuple, c.Attr)
		labels := gr.ar.labelBuf[:0]
		obs := int32(-1)
		for j, v := range cands {
			labels = append(labels, int32(v))
			if v == obsVal {
				obs = int32(j)
			}
		}
		gr.ar.labelBuf = labels
		if obs < 0 {
			continue // observed value pruned away; unusable as evidence
		}
		v := gr.g.AddVariable(labels, true, obs)
		gr.out.VarOf.set(c, v)
		gr.out.Cells = append(gr.out.Cells, c)
		gr.out.Stats.EvidenceVars++
	}
}

// groundFeatures emits Value?(t,a,d) :- HasFeature(t,a,f) with weights
// tied by (attribute, candidate value, feature), plus the real-valued
// soft features (co-occurrence probabilities) with attribute-tied weights.
func (gr *grounder) groundFeatures() {
	if gr.db.Features == nil && gr.db.SoftFeatures == nil {
		return
	}
	for vi, c := range gr.out.Cells {
		if !gr.cfg.wantFactors(c) {
			continue
		}
		v := int32(vi)
		dom := gr.g.Vars[v].Domain
		if gr.db.Features != nil {
			for _, f := range gr.db.Features(c) {
				for d, label := range dom {
					// The key is staged in the arena buffer and looked up
					// with IDBytes: the per-factor path allocates no key
					// string once the key is known to the weight store
					// (or, with a shared interner, to any prior grounding).
					key := gr.ar.keyBuf[:0]
					key = append(key, "ft|"...)
					key = strconv.AppendInt(key, int64(c.Attr), 10)
					key = append(key, '|')
					key = strconv.AppendInt(key, int64(label), 10)
					key = append(key, '|')
					key = append(key, f...)
					gr.ar.keyBuf = key
					wid := gr.g.Weights.IDBytes(key, 0, false)
					gr.g.AddUnary(v, int32(d), wid, false, 1)
					gr.out.Stats.PaperFactors++
				}
			}
		}
		if gr.db.SoftFeatures != nil {
			for _, sf := range gr.db.SoftFeatures(c, dom) {
				wid := gr.g.Weights.ID(sf.Key, sf.Init, false)
				gr.g.AddSoft(v, wid, sf.H)
				gr.out.Stats.PaperFactors++
			}
		}
	}
}

// groundMatches emits Value?(t,a,d) :- Matched(t,a,d,k) with one
// reliability weight per dictionary. Matches conditioned on a cell that
// is itself a repairable query variable get a separate, weaker weight:
// the lookup key may be the error (a swapped zip retrieves the wrong
// city), so such suggestions must not carry the full dictionary prior.
func (gr *grounder) groundMatches() {
	for _, m := range gr.db.Matches {
		v, ok := gr.out.VarOf.Get(m.Cell)
		if !ok || !gr.cfg.wantFactors(m.Cell) {
			continue
		}
		label, ok := gr.db.DS.Dict().Lookup(m.Value)
		if !ok {
			continue
		}
		key := gr.ar.keyBuf[:0]
		key = append(key, "dict|"...)
		key = append(key, m.Dict...)
		prior := gr.db.DictPrior
		for _, cc := range m.CondCells {
			if jv := gr.queryVarOf(cc); jv >= 0 && len(gr.g.Vars[jv].Domain) >= 2 {
				key = append(key, "|weak"...)
				prior /= 2
				break
			}
		}
		gr.ar.keyBuf = key
		dom := gr.g.Vars[v].Domain
		for d, l := range dom {
			if l == int32(label) {
				wid := gr.g.Weights.IDBytes(key, prior, false)
				gr.g.AddUnary(v, int32(d), wid, false, 1)
				gr.out.Stats.PaperFactors++
				break
			}
		}
	}
}

// groundMinimality emits the positive prior on keeping the initial value
// for every query variable whose initial value survived pruning.
func (gr *grounder) groundMinimality(weight float64) {
	wid := gr.g.Weights.ID("prior|minimality", weight, true)
	for vi, c := range gr.out.Cells {
		if !gr.cfg.wantFactors(c) {
			continue
		}
		v := int32(vi)
		vr := &gr.g.Vars[v]
		if vr.Evidence || vr.Obs < 0 {
			continue
		}
		gr.g.AddUnary(v, vr.Obs, wid, false, 1)
		gr.out.Stats.PaperFactors++
	}
}

// queryVarOf returns the query variable of a cell, or -1 when the cell is
// clean or evidence (treated as a constant during DC grounding).
func (gr *grounder) queryVarOf(c dataset.Cell) int32 {
	if v, ok := gr.out.VarOf.Get(c); ok && !gr.g.Vars[v].Evidence {
		return v
	}
	return -1
}

// candidateLabels returns the labels cell c can take: its query-variable
// domain, or the singleton initial value.
func (gr *grounder) candidateLabels(c dataset.Cell) []int32 {
	if v := gr.queryVarOf(c); v >= 0 {
		return gr.g.Vars[v].Domain
	}
	init := gr.db.DS.Get(c.Tuple, c.Attr)
	if init == dataset.Null {
		return nil
	}
	return []int32{int32(init)}
}

// BuildGroupIndex densifies Algorithm 3 tuple groups into one
// constraint-indexed tuple → group-id table (-1 = no group). The sharded
// pipeline builds it once per run (compile.Prepare) so the K shard
// grounders share it instead of each allocating constraint × tuples
// arrays.
func BuildGroupIndex(numConstraints, numTuples int, groups []partition.Group) [][]int32 {
	idx := make([][]int32, numConstraints)
	for gi, g := range groups {
		m := idx[g.Constraint]
		if m == nil {
			m = make([]int32, numTuples)
			for i := range m {
				m[i] = -1
			}
			idx[g.Constraint] = m
		}
		for _, t := range g.Tuples {
			m[t] = int32(gi)
		}
	}
	// Constraints with no groups share one read-only all-(-1) row rather
	// than each allocating numTuples of identical sentinel.
	var empty []int32
	for ci := range idx {
		if idx[ci] == nil {
			if empty == nil {
				empty = make([]int32, numTuples)
				for i := range empty {
					empty[i] = -1
				}
			}
			idx[ci] = empty
		}
	}
	return idx
}

// groupsFor returns the constraint's dense tuple → group index, from the
// shared per-run table when the database carries one, else built lazily
// per grounder (one BuildGroupIndex call populates every constraint's
// row, so the fallback stays linear in constraints).
func (gr *grounder) groupsFor(ci int) []int32 {
	if gr.db.GroupIndex != nil {
		return gr.db.GroupIndex[ci]
	}
	if gr.grp == nil {
		gr.grp = BuildGroupIndex(len(gr.db.Bounds), gr.db.DS.NumTuples(), gr.db.Groups)
	}
	return gr.grp[ci]
}

// sameGroup reports whether t1 and t2 share an Algorithm 3 group for
// constraint ci.
func (gr *grounder) sameGroup(ci, t1, t2 int) bool {
	m := gr.groupsFor(ci)
	return m[t1] >= 0 && m[t1] == m[t2]
}

// isSymmetric reports whether swapping t1 and t2 yields the same
// constraint, in which case unordered pair enumeration suffices.
func (gr *grounder) isSymmetric(ci int) bool {
	if s := gr.sym[ci]; s >= 0 {
		return s == 1
	}
	b := gr.db.Bounds[ci]
	orig := canonicalPreds(b, false)
	swap := canonicalPreds(b, true)
	sort.Strings(orig)
	sort.Strings(swap)
	s := len(orig) == len(swap)
	if s {
		for i := range orig {
			if orig[i] != swap[i] {
				s = false
				break
			}
		}
	}
	if s {
		gr.sym[ci] = 1
	} else {
		gr.sym[ci] = 0
	}
	return s
}

// canonicalPreds renders each predicate in a normal form, optionally with
// tuple variables exchanged.
func canonicalPreds(b *dc.Bound, swapped bool) []string {
	tv := func(t int) int {
		if swapped && b.TupleVars == 2 {
			return 1 - t
		}
		return t
	}
	out := make([]string, 0, len(b.Preds))
	for _, p := range b.Preds {
		if p.RightIsConst {
			out = append(out, fmt.Sprintf("c|%d|%d|%d|%s", tv(p.LeftTuple), p.LeftAttr, p.Op, p.ConstStr))
			continue
		}
		lt, la := tv(p.LeftTuple), p.LeftAttr
		rt, ra := tv(p.RightTuple), p.RightAttr
		op := p.Op
		// Symmetric operators: order the two sides canonically.
		// Asymmetric ones: flip to put the lexicographically smaller side
		// left, inverting the operator.
		if lt > rt || (lt == rt && la > ra) {
			switch op {
			case dc.Eq, dc.Neq, dc.Sim:
				lt, la, rt, ra = rt, ra, lt, la
			case dc.Lt:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Gt
			case dc.Gt:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Lt
			case dc.Leq:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Geq
			case dc.Geq:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Leq
			}
		}
		out = append(out, fmt.Sprintf("p|%d|%d|%d|%d|%d", lt, la, op, rt, ra))
	}
	return out
}
