package ddlog

import (
	"fmt"
	"sort"
	"strconv"

	"holoclean/internal/dataset"
	"holoclean/internal/dc"
	"holoclean/internal/extdict"
	"holoclean/internal/factor"
	"holoclean/internal/partition"
	"holoclean/internal/pruning"
)

// Database holds the materialized relations of Section 4.1 that rule
// grounding joins over.
type Database struct {
	// DS is the dirty dataset: the Tuple and InitValue relations.
	DS *dataset.Dataset
	// Bounds are the bound denial constraints referenced by DC rules.
	Bounds []*dc.Bound
	// Domains is the Domain relation for noisy cells (query variables),
	// produced by Algorithm 2.
	Domains *pruning.Domains
	// Evidence lists the sampled clean cells that become evidence
	// variables for learning; EvidenceDomains are their candidate sets
	// (each must contain the observed value).
	Evidence        []dataset.Cell
	EvidenceDomains [][]dataset.Value
	// Features materializes HasFeature(t,a,f) lazily: the feature
	// identifiers of one cell. May be nil when no feature rule exists.
	Features func(c dataset.Cell) []string
	// SoftFeatures materializes real-valued features: per cell and
	// candidate-label vector, zero or more (weight key, h vector) pairs.
	// HoloClean uses one per cell carrying co-occurrence probabilities
	// with the weight tied per attribute. May be nil.
	SoftFeatures func(c dataset.Cell, dom []int32) []SoftFeature
	// DictPrior is the initial (learnable) reliability weight w(k) of
	// dictionary match factors.
	DictPrior float64
	// RelaxedDCPrior is the initial (learnable) weight of relaxed
	// denial-constraint features (Section 5.2) — the prior belief that
	// constraint violations indicate errors.
	RelaxedDCPrior float64
	// Matches is the Matched(t,a,d,k) relation.
	Matches []extdict.Match
	// Groups are the Algorithm 3 tuple groups; nil disables partitioning
	// even for rules that request it.
	Groups []partition.Group
	// Shared, when non-nil, supplies dataset-wide indexes shared across
	// the per-shard grounders of the sharded pipeline. Nil keeps the
	// original per-grounder lazy indexes (the monolithic path).
	Shared *SharedIndex
	// Scope, when non-nil, restricts DC-factor grounding to one shard:
	// pairs that reach a noisy tuple outside the shard are skipped (see
	// Scope). Nil grounds every pair (monolithic behavior).
	Scope *Scope
}

// Config tunes grounding.
type Config struct {
	// MaxScanCounterparts caps the counterpart tuples considered per cell
	// when a DC rule has no equality predicate to index on (0 =
	// unlimited). The cap is an approximation documented in DESIGN.md.
	MaxScanCounterparts int
	// FactorCells, when non-nil, restricts the per-cell factor rules
	// (features, minimality, matches, relaxed DCs) to cells it accepts.
	// Variables are still created for every cell, so domain-aware checks
	// (e.g. the weak-evidence discounts) see the full model. The sharded
	// pipeline grounds its learning graph with an evidence-only filter:
	// query cells become factorless domain stubs, and the evidence cells
	// carry exactly the factors they carry in a monolithic grounding.
	FactorCells func(c dataset.Cell) bool
}

// wantFactors reports whether per-cell factor rules should ground factors
// anchored at cell c.
func (cfg *Config) wantFactors(c dataset.Cell) bool {
	return cfg.FactorCells == nil || cfg.FactorCells(c)
}

// Stats describes the grounded model. PaperFactors counts groundings the
// way Example 5 does — one factor per value combination of the involved
// random variables — while the compact in-memory representation stores
// one predicate factor per tuple pair and aggregates identical unary
// factors with multiplicities.
type Stats struct {
	Variables    int
	QueryVars    int
	EvidenceVars int
	UnaryFactors int
	NaryFactors  int
	PaperFactors int64
	PairsChecked int64
}

// SoftFeature is one real-valued feature of a cell: h values per
// candidate with a tied weight key. Init is the weight's starting value;
// learning adjusts it when evidence exists, but on workloads where error
// detection flags entire conflict groups (e.g. Flights) evidence is
// scarce and the prior carries the signal.
type SoftFeature struct {
	Key  string
	H    []float64
	Init float64
}

// Grounded is the result of grounding a program: the factor graph plus
// the cell↔variable correspondence.
type Grounded struct {
	Graph *factor.Graph
	// Cells maps variable id → cell.
	Cells []dataset.Cell
	// VarOf maps cell → variable id.
	VarOf map[dataset.Cell]int32
	Stats Stats
}

// Domain returns the candidate labels of variable v as dataset values.
func (g *Grounded) Domain(v int32) []dataset.Value {
	labels := g.Graph.Vars[v].Domain
	out := make([]dataset.Value, len(labels))
	for i, l := range labels {
		out[i] = dataset.Value(l)
	}
	return out
}

type grounder struct {
	db      *Database
	cfg     Config
	g       *factor.Graph
	out     *Grounded
	sym     map[int]bool                    // constraint → symmetric under tuple swap
	grp     map[int]map[int]int             // constraint → tuple → group id
	initIdx map[int]map[dataset.Value][]int // attribute → initial value → tuples
}

// Ground evaluates every rule of the program against the database and
// returns the factor graph.
func Ground(db *Database, prog *Program, cfg Config) (*Grounded, error) {
	gr := &grounder{
		db:  db,
		cfg: cfg,
		g:   factor.NewGraph(),
		sym: make(map[int]bool),
		grp: make(map[int]map[int]int),
	}
	gr.out = &Grounded{Graph: gr.g, VarOf: make(map[dataset.Cell]int32)}
	dict := db.DS.Dict()
	gr.g.Cmp = func(op uint8, a, b int32) bool {
		return dc.Compare(dc.Op(op), dict.String(dataset.Value(a)), dict.String(dataset.Value(b)))
	}

	// The random-variable rule must ground first; factor rules reference
	// the variables it creates.
	hasRV := false
	for _, r := range prog.Rules {
		if r.Kind == RandomVariables {
			gr.groundVariables()
			hasRV = true
			break
		}
	}
	if !hasRV && len(prog.Rules) > 0 {
		return nil, fmt.Errorf("ddlog: program has factor rules but no random-variable rule")
	}
	for _, r := range prog.Rules {
		switch r.Kind {
		case RandomVariables:
			// already grounded
		case FeatureFactors:
			gr.groundFeatures()
		case MatchedFactors:
			gr.groundMatches()
		case MinimalityFactors:
			gr.groundMinimality(r.FixedWeight)
		case DCFactors:
			if err := gr.groundDC(r); err != nil {
				return nil, err
			}
		case RelaxedDCFactors:
			if err := gr.groundRelaxedDC(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("ddlog: unknown rule kind %d", r.Kind)
		}
	}
	gr.out.Stats.Variables = len(gr.g.Vars)
	gr.out.Stats.UnaryFactors = len(gr.g.Unaries)
	gr.out.Stats.NaryFactors = len(gr.g.Naries)
	return gr.out, nil
}

// groundVariables creates one query variable per noisy cell and one
// evidence variable per sampled clean cell.
func (gr *grounder) groundVariables() {
	db := gr.db
	for i, c := range db.Domains.Cells {
		cands := db.Domains.Candidates[i]
		if len(cands) == 0 {
			continue // nothing to infer; cell keeps its value
		}
		labels := make([]int32, len(cands))
		obs := int32(-1)
		init := db.DS.Get(c.Tuple, c.Attr)
		for j, v := range cands {
			labels[j] = int32(v)
			if v == init && init != dataset.Null {
				obs = int32(j)
			}
		}
		v := gr.g.AddVariable(labels, false, obs)
		gr.out.VarOf[c] = v
		gr.out.Cells = append(gr.out.Cells, c)
		gr.out.Stats.QueryVars++
	}
	for i, c := range db.Evidence {
		if _, dup := gr.out.VarOf[c]; dup {
			continue // a cell cannot be both noisy and evidence
		}
		cands := db.EvidenceDomains[i]
		obsVal := db.DS.Get(c.Tuple, c.Attr)
		labels := make([]int32, len(cands))
		obs := int32(-1)
		for j, v := range cands {
			labels[j] = int32(v)
			if v == obsVal {
				obs = int32(j)
			}
		}
		if obs < 0 {
			continue // observed value pruned away; unusable as evidence
		}
		v := gr.g.AddVariable(labels, true, obs)
		gr.out.VarOf[c] = v
		gr.out.Cells = append(gr.out.Cells, c)
		gr.out.Stats.EvidenceVars++
	}
}

// groundFeatures emits Value?(t,a,d) :- HasFeature(t,a,f) with weights
// tied by (attribute, candidate value, feature), plus the real-valued
// soft features (co-occurrence probabilities) with attribute-tied weights.
func (gr *grounder) groundFeatures() {
	if gr.db.Features == nil && gr.db.SoftFeatures == nil {
		return
	}
	var key []byte
	for vi, c := range gr.out.Cells {
		if !gr.cfg.wantFactors(c) {
			continue
		}
		v := int32(vi)
		dom := gr.g.Vars[v].Domain
		if gr.db.Features != nil {
			for _, f := range gr.db.Features(c) {
				for d, label := range dom {
					key = key[:0]
					key = append(key, "ft|"...)
					key = strconv.AppendInt(key, int64(c.Attr), 10)
					key = append(key, '|')
					key = strconv.AppendInt(key, int64(label), 10)
					key = append(key, '|')
					key = append(key, f...)
					wid := gr.g.Weights.ID(string(key), 0, false)
					gr.g.AddUnary(v, int32(d), wid, false, 1)
					gr.out.Stats.PaperFactors++
				}
			}
		}
		if gr.db.SoftFeatures != nil {
			for _, sf := range gr.db.SoftFeatures(c, dom) {
				wid := gr.g.Weights.ID(sf.Key, sf.Init, false)
				gr.g.AddSoft(v, wid, sf.H)
				gr.out.Stats.PaperFactors++
			}
		}
	}
}

// groundMatches emits Value?(t,a,d) :- Matched(t,a,d,k) with one
// reliability weight per dictionary. Matches conditioned on a cell that
// is itself a repairable query variable get a separate, weaker weight:
// the lookup key may be the error (a swapped zip retrieves the wrong
// city), so such suggestions must not carry the full dictionary prior.
func (gr *grounder) groundMatches() {
	for _, m := range gr.db.Matches {
		v, ok := gr.out.VarOf[m.Cell]
		if !ok || !gr.cfg.wantFactors(m.Cell) {
			continue
		}
		label, ok := gr.db.DS.Dict().Lookup(m.Value)
		if !ok {
			continue
		}
		key := "dict|" + m.Dict
		prior := gr.db.DictPrior
		for _, cc := range m.CondCells {
			if jv := gr.queryVarOf(cc); jv >= 0 && len(gr.g.Vars[jv].Domain) >= 2 {
				key += "|weak"
				prior /= 2
				break
			}
		}
		dom := gr.g.Vars[v].Domain
		for d, l := range dom {
			if l == int32(label) {
				wid := gr.g.Weights.ID(key, prior, false)
				gr.g.AddUnary(v, int32(d), wid, false, 1)
				gr.out.Stats.PaperFactors++
				break
			}
		}
	}
}

// groundMinimality emits the positive prior on keeping the initial value
// for every query variable whose initial value survived pruning.
func (gr *grounder) groundMinimality(weight float64) {
	wid := gr.g.Weights.ID("prior|minimality", weight, true)
	for vi, c := range gr.out.Cells {
		if !gr.cfg.wantFactors(c) {
			continue
		}
		v := int32(vi)
		vr := &gr.g.Vars[v]
		if vr.Evidence || vr.Obs < 0 {
			continue
		}
		gr.g.AddUnary(v, vr.Obs, wid, false, 1)
		gr.out.Stats.PaperFactors++
	}
}

// queryVarOf returns the query variable of a cell, or -1 when the cell is
// clean or evidence (treated as a constant during DC grounding).
func (gr *grounder) queryVarOf(c dataset.Cell) int32 {
	if v, ok := gr.out.VarOf[c]; ok && !gr.g.Vars[v].Evidence {
		return v
	}
	return -1
}

// candidateLabels returns the labels cell c can take: its query-variable
// domain, or the singleton initial value.
func (gr *grounder) candidateLabels(c dataset.Cell) []int32 {
	if v := gr.queryVarOf(c); v >= 0 {
		return gr.g.Vars[v].Domain
	}
	init := gr.db.DS.Get(c.Tuple, c.Attr)
	if init == dataset.Null {
		return nil
	}
	return []int32{int32(init)}
}

// groupsFor lazily builds the constraint's tuple → group index.
func (gr *grounder) groupsFor(ci int) map[int]int {
	if m, ok := gr.grp[ci]; ok {
		return m
	}
	m := make(map[int]int)
	for gi, g := range gr.db.Groups {
		if g.Constraint != ci {
			continue
		}
		for _, t := range g.Tuples {
			m[t] = gi
		}
	}
	gr.grp[ci] = m
	return m
}

// sameGroup reports whether t1 and t2 share an Algorithm 3 group for
// constraint ci.
func (gr *grounder) sameGroup(ci, t1, t2 int) bool {
	m := gr.groupsFor(ci)
	g1, ok1 := m[t1]
	g2, ok2 := m[t2]
	return ok1 && ok2 && g1 == g2
}

// isSymmetric reports whether swapping t1 and t2 yields the same
// constraint, in which case unordered pair enumeration suffices.
func (gr *grounder) isSymmetric(ci int) bool {
	if s, ok := gr.sym[ci]; ok {
		return s
	}
	b := gr.db.Bounds[ci]
	orig := canonicalPreds(b, false)
	swap := canonicalPreds(b, true)
	sort.Strings(orig)
	sort.Strings(swap)
	s := len(orig) == len(swap)
	if s {
		for i := range orig {
			if orig[i] != swap[i] {
				s = false
				break
			}
		}
	}
	gr.sym[ci] = s
	return s
}

// canonicalPreds renders each predicate in a normal form, optionally with
// tuple variables exchanged.
func canonicalPreds(b *dc.Bound, swapped bool) []string {
	tv := func(t int) int {
		if swapped && b.TupleVars == 2 {
			return 1 - t
		}
		return t
	}
	out := make([]string, 0, len(b.Preds))
	for _, p := range b.Preds {
		if p.RightIsConst {
			out = append(out, fmt.Sprintf("c|%d|%d|%d|%s", tv(p.LeftTuple), p.LeftAttr, p.Op, p.ConstStr))
			continue
		}
		lt, la := tv(p.LeftTuple), p.LeftAttr
		rt, ra := tv(p.RightTuple), p.RightAttr
		op := p.Op
		// Symmetric operators: order the two sides canonically.
		// Asymmetric ones: flip to put the lexicographically smaller side
		// left, inverting the operator.
		if lt > rt || (lt == rt && la > ra) {
			switch op {
			case dc.Eq, dc.Neq, dc.Sim:
				lt, la, rt, ra = rt, ra, lt, la
			case dc.Lt:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Gt
			case dc.Gt:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Lt
			case dc.Leq:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Geq
			case dc.Geq:
				lt, la, rt, ra, op = rt, ra, lt, la, dc.Leq
			}
		}
		out = append(out, fmt.Sprintf("p|%d|%d|%d|%d|%d", lt, la, op, rt, ra))
	}
	return out
}
