package ddlog

import (
	"strings"
	"testing"

	"holoclean/internal/dataset"
	"holoclean/internal/dc"
	"holoclean/internal/extdict"
	"holoclean/internal/pruning"
	"holoclean/internal/stats"
)

// fixture builds a small dirty dataset with one FD and pruned domains for
// the conflicting zip cells.
type fixture struct {
	ds     *dataset.Dataset
	bounds []*dc.Bound
	db     *Database
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ds := dataset.New([]string{"Name", "Zip"})
	ds.Append([]string{"a", "60608"})
	ds.Append([]string{"a", "60609"})
	ds.Append([]string{"a", "60608"})
	ds.Append([]string{"b", "70000"})
	cs := dc.FD("fd", []string{"Name"}, []string{"Zip"})
	bounds, err := dc.BindAll(cs, ds)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Collect(ds)
	noisy := []dataset.Cell{
		{Tuple: 0, Attr: 1}, {Tuple: 1, Attr: 1}, {Tuple: 2, Attr: 1},
	}
	domains := pruning.Compute(ds, st, noisy, pruning.Config{Tau: 0.2})
	return &fixture{
		ds:     ds,
		bounds: bounds,
		db: &Database{
			DS:      ds,
			Bounds:  bounds,
			Domains: domains,
		},
	}
}

func TestGroundVariables(t *testing.T) {
	fx := newFixture(t)
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.QueryVars != 3 {
		t.Fatalf("query vars = %d, want 3", g.Stats.QueryVars)
	}
	for vi, c := range g.Cells {
		v := &g.Graph.Vars[vi]
		if v.Obs < 0 {
			t.Errorf("cell %v: initial value should be in domain", c)
		}
		if int32(fx.ds.Get(c.Tuple, c.Attr)) != v.Domain[v.Obs] {
			t.Errorf("cell %v: Obs points at the wrong label", c)
		}
	}
	// Domain translation round-trips.
	dom := g.Domain(0)
	if len(dom) != len(g.Graph.Vars[0].Domain) {
		t.Errorf("Domain helper length mismatch")
	}
}

func TestGroundMinimality(t *testing.T) {
	fx := newFixture(t)
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: MinimalityFactors, FixedWeight: 0.9})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Graph.Unaries) != 3 {
		t.Fatalf("minimality factors = %d, want 3", len(g.Graph.Unaries))
	}
	for _, u := range g.Graph.Unaries {
		if u.Target != g.Graph.Vars[u.Var].Obs {
			t.Errorf("minimality factor must target the initial value")
		}
		if !g.Graph.Weights.Fixed[u.Weight] || g.Graph.Weights.W[u.Weight] != 0.9 {
			t.Errorf("minimality weight must be fixed at the configured value")
		}
	}
}

func TestGroundFeatures(t *testing.T) {
	fx := newFixture(t)
	fx.db.Features = func(c dataset.Cell) []string { return []string{"f1", "f2"} }
	fx.db.SoftFeatures = func(c dataset.Cell, dom []int32) []SoftFeature {
		h := make([]float64, len(dom))
		return []SoftFeature{{Key: "soft|x", H: h, Init: 0.7}}
	}
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: FeatureFactors})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Unary indicators: per cell, |dom| × 2 features.
	wantUnary := 0
	for vi := range g.Cells {
		wantUnary += len(g.Graph.Vars[vi].Domain) * 2
	}
	if len(g.Graph.Unaries) != wantUnary {
		t.Errorf("feature factors = %d, want %d", len(g.Graph.Unaries), wantUnary)
	}
	if len(g.Graph.Softs) != 3 {
		t.Errorf("soft factors = %d, want 3", len(g.Graph.Softs))
	}
	// Soft init respected.
	sw := g.Graph.Softs[0].Weight
	if g.Graph.Weights.W[sw] != 0.7 {
		t.Errorf("soft init weight = %v", g.Graph.Weights.W[sw])
	}
}

func TestGroundMatches(t *testing.T) {
	fx := newFixture(t)
	fx.db.Matches = []extdict.Match{
		{Cell: dataset.Cell{Tuple: 1, Attr: 1}, Value: "60608", Dict: "k"},
		{Cell: dataset.Cell{Tuple: 1, Attr: 1}, Value: "99999", Dict: "k"}, // not in domain
		{Cell: dataset.Cell{Tuple: 3, Attr: 1}, Value: "60608", Dict: "k"}, // not a variable
	}
	fx.db.DictPrior = 1.8
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: MatchedFactors})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Graph.Unaries) != 1 {
		t.Fatalf("matched factors = %d, want 1 (out-of-domain and non-variable skipped)", len(g.Graph.Unaries))
	}
	u := g.Graph.Unaries[0]
	if g.Graph.Weights.Keys[u.Weight] != "dict|k" || g.Graph.Weights.W[u.Weight] != 1.8 {
		t.Errorf("dictionary weight wrong: %v", g.Graph.Weights.W[u.Weight])
	}
}

func TestGroundDCFactors(t *testing.T) {
	fx := newFixture(t)
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: DCFactors, Name: "fd", Constraint: 0, FixedWeight: 3})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Graph.Naries) == 0 {
		t.Fatal("expected grounded DC factors")
	}
	// Factors must only touch query variables; evidence and clean cells
	// are folded into constants.
	for _, f := range g.Graph.Naries {
		if len(f.Vars) == 0 || len(f.Preds) == 0 {
			t.Errorf("degenerate factor: %+v", f)
		}
		for _, v := range f.Vars {
			if g.Graph.Vars[v].Evidence {
				t.Errorf("DC factor touches evidence variable")
			}
		}
	}
	// Tuple 3 (name "b") conflicts with nobody; no factor may involve it.
	for _, f := range g.Graph.Naries {
		for _, v := range f.Vars {
			if g.Cells[v].Tuple == 3 {
				t.Errorf("tuple 3 should not be grounded")
			}
		}
	}
	if g.Stats.PaperFactors <= 0 || g.Stats.PairsChecked <= 0 {
		t.Errorf("grounding stats not populated: %+v", g.Stats)
	}
}

func TestGroundDCFactorSemantics(t *testing.T) {
	// Ground and verify the factor's h by brute force. The factor encodes
	// ¬(name=name ∧ zip≠zip) with the (clean, equal) names folded away:
	// equal zips satisfy the FD (h=+1), differing zips violate it (h=−1).
	fx := newFixture(t)
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: DCFactors, Name: "fd", Constraint: 0, FixedWeight: 3})
	g, _ := Ground(fx.db, prog, Config{})
	gr := g.Graph
	gr.Freeze()
	setTo := func(v int32, label int32) bool {
		for d, l := range gr.Vars[v].Domain {
			if l == label {
				gr.Vars[v].Assign = int32(d)
				return true
			}
		}
		return false
	}
	checked := false
	for i := range gr.Naries {
		f := &gr.Naries[i]
		if len(f.Vars) != 2 {
			continue
		}
		v0, v1 := f.Vars[0], f.Vars[1]
		var common, other0, other1 int32 = -1, -1, -1
		for _, l0 := range gr.Vars[v0].Domain {
			for _, l1 := range gr.Vars[v1].Domain {
				if l0 == l1 {
					common = l0
				} else {
					other0, other1 = l0, l1
				}
			}
		}
		if common >= 0 {
			setTo(v0, common)
			setTo(v1, common)
			if h := gr.NaryH(f, -1, 0); h != 1 {
				t.Errorf("equal zips satisfy the FD, h=%v", h)
			}
			checked = true
		}
		if other0 >= 0 && setTo(v0, other0) && setTo(v1, other1) {
			if h := gr.NaryH(f, -1, 0); h != -1 {
				t.Errorf("differing zips violate the FD, h=%v", h)
			}
			checked = true
		}
	}
	if !checked {
		t.Fatal("no two-variable factor exercised")
	}
}

func TestGroundRelaxedDC(t *testing.T) {
	fx := newFixture(t)
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	// Head on t1.Zip (attr 1).
	prog.Add(&Rule{Kind: RelaxedDCFactors, Name: "fd@zip", Constraint: 0, Head: CellRef{TupleVar: 0, Attr: 1}})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Graph.Softs) == 0 {
		t.Fatal("expected relaxed soft factors")
	}
	// For tuple 1 (zip 60609, conflicting with 60608 ×2): candidate
	// 60608 violates nothing (counterparts hold 60608); candidate 60609
	// violates both counterparts.
	v1, _ := g.VarOf.Get(dataset.Cell{Tuple: 1, Attr: 1})
	var soft *SoftFeature
	for i := range g.Graph.Softs {
		s := &g.Graph.Softs[i]
		if s.Var == v1 {
			soft = &SoftFeature{H: s.H}
		}
	}
	if soft == nil {
		t.Fatal("no relaxed factor on the conflicted cell")
	}
	dom := g.Graph.Vars[v1].Domain
	for d, label := range dom {
		vs := fx.ds.Dict().String(dataset.Value(label))
		switch vs {
		case "60609":
			if soft.H[d] >= 0 {
				t.Errorf("60609 should be discouraged, h=%v", soft.H[d])
			}
		case "60608":
			if soft.H[d] != 0 {
				t.Errorf("60608 violates nothing, h=%v", soft.H[d])
			}
		}
	}
}

func TestProgramRendering(t *testing.T) {
	fx := newFixture(t)
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: FeatureFactors})
	prog.Add(&Rule{Kind: MatchedFactors})
	prog.Add(&Rule{Kind: MinimalityFactors, FixedWeight: 1})
	prog.Add(&Rule{Kind: DCFactors, Name: "fd", Constraint: 0, FixedWeight: 4})
	prog.Add(&Rule{Kind: RelaxedDCFactors, Name: "fd@zip", Constraint: 0, Head: CellRef{TupleVar: 0, Attr: 1}})
	text := prog.Render(fx.bounds)
	for _, want := range []string{
		"Value?(t, a, d) :- Domain(t, a, d)",
		"HasFeature(t, a, f)",
		"Matched(t, a, d, k)",
		"InitValue(t, a, d)",
		"!(Value?(t1, a0, x0)",
		"!Value?(t1, a1, v)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered program missing %q:\n%s", want, text)
		}
	}
}

func TestCellRefs(t *testing.T) {
	fx := newFixture(t)
	refs := CellRefs(fx.bounds[0])
	// FD Name→Zip references t1.Name, t2.Name, t1.Zip, t2.Zip.
	if len(refs) != 4 {
		t.Errorf("CellRefs = %v, want 4 refs", refs)
	}
}

func TestGroundEvidence(t *testing.T) {
	fx := newFixture(t)
	fx.db.Evidence = []dataset.Cell{{Tuple: 3, Attr: 1}}
	fx.db.EvidenceDomains = [][]dataset.Value{fx.ds.ActiveDomain(1)}
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.EvidenceVars != 1 {
		t.Fatalf("evidence vars = %d, want 1", g.Stats.EvidenceVars)
	}
	ev, _ := g.VarOf.Get(dataset.Cell{Tuple: 3, Attr: 1})
	if !g.Graph.Vars[ev].Evidence {
		t.Errorf("cell should be evidence")
	}
	if g.Graph.Vars[ev].Domain[g.Graph.Vars[ev].Obs] != int32(fx.ds.Get(3, 1)) {
		t.Errorf("evidence Obs mismatch")
	}
}

func TestOpCodesAligned(t *testing.T) {
	// The factor package mirrors dc.Op by value; a drift would silently
	// corrupt grounded predicates.
	pairs := []struct {
		d dc.Op
		f uint8
	}{
		{dc.Eq, 0}, {dc.Neq, 1}, {dc.Lt, 2}, {dc.Gt, 3}, {dc.Leq, 4}, {dc.Geq, 5}, {dc.Sim, 6},
	}
	for _, p := range pairs {
		if uint8(p.d) != p.f {
			t.Fatalf("op code drift: dc %v = %d, factor %d", p.d, uint8(p.d), p.f)
		}
	}
}
