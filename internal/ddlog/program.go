// Package ddlog implements the declarative layer HoloClean compiles to
// (Sections 3.2 and 4): a probabilistic program of DDlog-style inference
// rules over materialized relations, and the grounding engine that
// evaluates those rules to emit a factor graph. It replaces the
// DeepDive/DDlog/Postgres stack of the original system.
//
// The relations of Section 4.1 — Tuple(t), InitValue(t,a,v),
// Domain(t,a,d), HasFeature(t,a,f), Matched(t,a,d,k) — are materialized
// in a Database; rules reference them by kind rather than by a free-form
// Datalog body, which is faithful to how HoloClean's compiler emits a
// fixed repertoire of rule shapes (one per repair signal) while keeping
// grounding efficient.
package ddlog

import (
	"fmt"
	"strings"

	"holoclean/internal/dc"
)

// RuleKind enumerates the rule shapes HoloClean's compiler emits.
type RuleKind int

const (
	// RandomVariables declares the random-variable relation:
	//   Value?(t,a,d) :- Domain(t,a,d)
	RandomVariables RuleKind = iota
	// FeatureFactors encodes quantitative statistics:
	//   Value?(t,a,d) :- HasFeature(t,a,f) weight = w(d,f)
	FeatureFactors
	// MatchedFactors encodes external data:
	//   Value?(t,a,d) :- Matched(t,a,d,k) weight = w(k)
	MatchedFactors
	// MinimalityFactors encodes the minimality prior:
	//   Value?(t,a,d) :- InitValue(t,a,d) weight = w_min
	MinimalityFactors
	// DCFactors encodes one denial constraint as correlation factors
	// (Algorithm 1):
	//   !(∧ Value?(...)) :- Tuple(t1),Tuple(t2),[scope] weight = w_dc
	DCFactors
	// RelaxedDCFactors encodes one single-head relaxation of a denial
	// constraint (Section 5.2, Example 6):
	//   !Value?(tv,A,v) :- InitValue(...),Tuple(t1),Tuple(t2),[scope]
	//   weight = w(σ, A)
	RelaxedDCFactors
)

// CellRef identifies one (tuple variable, attribute) reference inside a
// denial constraint, e.g. t1.Zip.
type CellRef struct {
	TupleVar int // 0 = t1, 1 = t2
	Attr     int // attribute index
}

// Rule is one inference rule of the program.
type Rule struct {
	Kind RuleKind
	Name string

	// Constraint indexes Database.Bounds for DCFactors/RelaxedDCFactors.
	Constraint int
	// Head is the single-head cell reference for RelaxedDCFactors.
	Head CellRef
	// FixedWeight holds the constant weight for MinimalityFactors and
	// DCFactors (learnable-weight kinds ignore it).
	FixedWeight float64
	// Partition restricts DC grounding to Algorithm 3 tuple groups.
	Partition bool
}

// Program is an ordered list of rules — the probabilistic program
// HoloClean's compiler generates.
type Program struct {
	Rules []*Rule
}

// Add appends a rule.
func (p *Program) Add(r *Rule) { p.Rules = append(p.Rules, r) }

// String renders the whole program as DDlog-style text.
func (p *Program) String() string { return p.Render(nil) }

// Render renders the program, using bound constraints (when supplied) to
// expand DC rules into the notation of Examples 4 and 6.
func (p *Program) Render(bounds []*dc.Bound) string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.Render(bounds))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render renders one rule as DDlog-style text.
func (r *Rule) Render(bounds []*dc.Bound) string {
	switch r.Kind {
	case RandomVariables:
		return "Value?(t, a, d) :- Domain(t, a, d)"
	case FeatureFactors:
		return "Value?(t, a, d) :- HasFeature(t, a, f)  weight = w(d, f)"
	case MatchedFactors:
		return "Value?(t, a, d) :- Matched(t, a, d, k)  weight = w(k)"
	case MinimalityFactors:
		return fmt.Sprintf("Value?(t, a, d) :- InitValue(t, a, d)  weight = %g", r.FixedWeight)
	case DCFactors:
		body := "Tuple(t1), Tuple(t2)"
		head := fmt.Sprintf("!(conj of Value? atoms of %s)", r.Name)
		scope := ""
		if bounds != nil && r.Constraint < len(bounds) {
			head, scope = renderDCHead(bounds[r.Constraint])
		}
		return fmt.Sprintf("%s :- %s%s  weight = %g", head, body, scope, r.FixedWeight)
	case RelaxedDCFactors:
		head := fmt.Sprintf("!Value?(t%d, attr#%d, v)", r.Head.TupleVar+1, r.Head.Attr)
		scope := ""
		if bounds != nil && r.Constraint < len(bounds) {
			head, scope = renderRelaxedHead(bounds[r.Constraint], r.Head)
		}
		return fmt.Sprintf("%s :- InitValue(..), Tuple(t1), Tuple(t2)%s  weight = w(%s)", head, scope, r.Name)
	}
	return "<unknown rule>"
}

// renderDCHead renders the Algorithm 1 head/scope for a bound constraint,
// as in Example 4.
func renderDCHead(b *dc.Bound) (head, scope string) {
	var atoms, conds []string
	v := 0
	for _, p := range b.Preds {
		lv := fmt.Sprintf("x%d", v)
		atoms = append(atoms, fmt.Sprintf("Value?(t%d, a%d, %s)", p.LeftTuple+1, p.LeftAttr, lv))
		v++
		if p.RightIsConst {
			conds = append(conds, fmt.Sprintf("%s %s %q", lv, p.Op, p.ConstStr))
			continue
		}
		rv := fmt.Sprintf("x%d", v)
		atoms = append(atoms, fmt.Sprintf("Value?(t%d, a%d, %s)", p.RightTuple+1, p.RightAttr, rv))
		v++
		conds = append(conds, fmt.Sprintf("%s %s %s", lv, p.Op, rv))
	}
	return "!(" + strings.Join(atoms, " ∧ ") + ")", ", [" + strings.Join(conds, ", ") + "]"
}

// renderRelaxedHead renders the Example 6 style single-head rule.
func renderRelaxedHead(b *dc.Bound, head CellRef) (h, scope string) {
	var conds []string
	for _, p := range b.Preds {
		if p.RightIsConst {
			conds = append(conds, fmt.Sprintf("t%d.a%d %s %q", p.LeftTuple+1, p.LeftAttr, p.Op, p.ConstStr))
		} else {
			conds = append(conds, fmt.Sprintf("t%d.a%d %s t%d.a%d", p.LeftTuple+1, p.LeftAttr, p.Op, p.RightTuple+1, p.RightAttr))
		}
	}
	return fmt.Sprintf("!Value?(t%d, a%d, v)", head.TupleVar+1, head.Attr),
		", [" + strings.Join(conds, ", ") + "]"
}

// CellRefs returns the distinct (tuple variable, attribute) references of
// a bound constraint in first-mention order — the head candidates for the
// Section 5.2 relaxation.
func CellRefs(b *dc.Bound) []CellRef {
	var out []CellRef
	seen := make(map[CellRef]bool)
	add := func(r CellRef) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, p := range b.Preds {
		add(CellRef{TupleVar: p.LeftTuple, Attr: p.LeftAttr})
		if !p.RightIsConst {
			add(CellRef{TupleVar: p.RightTuple, Attr: p.RightAttr})
		}
	}
	return out
}
