package ddlog

import (
	"holoclean/internal/dataset"
	"holoclean/internal/dc"
)

// groundRelaxedDC grounds one single-head relaxation of a denial
// constraint (Section 5.2, Example 6). For the head cell reference
// hr = (tv, A), every variable on attribute A whose tuple plays role tv is
// a head; the remaining predicates are evaluated against initial values
// (the InitValue(…) body atoms of Example 6). Counterpart tuples whose
// initial values complete a violation contribute negative evidence
// against the violating candidate values.
//
// The per-counterpart groundings of a cell are aggregated into one soft
// factor whose value at candidate d is minus the fraction of counterparts
// that d would violate: h ∈ [−1, 0]. Using the fraction rather than the
// raw count keeps duplicate-heavy conflict groups (hundreds of identical
// counterparts) from drowning every other signal, while PaperFactors
// still counts one grounding per counterpart as Example 5 does.
func (gr *grounder) groundRelaxedDC(rule *Rule) error {
	b := gr.db.Bounds[rule.Constraint]
	hr := rule.Head
	key := "rdc|" + rule.Name

	// Split predicates into those referencing the head cell (evaluated
	// per candidate) and body predicates (evaluated on initial values).
	var headPreds, bodyPreds []int
	for i := range b.Preds {
		if predReferences(b, i, hr) {
			headPreds = append(headPreds, i)
		} else {
			bodyPreds = append(bodyPreds, i)
		}
	}

	for vi, c := range gr.out.Cells {
		if c.Attr != hr.Attr || !gr.cfg.wantFactors(c) {
			continue
		}
		v := int32(vi)
		dom := gr.g.Vars[v].Domain
		// Per-candidate violation counters, indexed by domain position,
		// staged in the arena (the old map-keyed counters churned map
		// operations on every counterpart).
		if cap(gr.ar.counts) >= len(dom) {
			gr.ar.counts = gr.ar.counts[:len(dom)]
		} else {
			gr.ar.counts = make([]int32, len(dom))
		}
		counts := gr.ar.counts
		for d := range counts {
			counts[d] = 0
		}
		var total int32
		scale := 1.0
		rc := relaxCtx{b: b, hr: hr, c: c, dom: dom, headPreds: headPreds, bodyPreds: bodyPreds, counts: counts}
		if b.TupleVars == 1 {
			total = gr.relaxSingle(&rc)
		} else {
			total, scale = gr.relaxPair(&rc)
		}
		if total == 0 {
			continue
		}
		h := make([]float64, len(dom))
		any := false
		for d := range dom {
			if cnt := counts[d]; cnt > 0 {
				h[d] = -scale * float64(cnt) / float64(total)
				any = true
				gr.out.Stats.PaperFactors += int64(cnt)
			}
		}
		if !any {
			continue
		}
		wid := gr.g.Weights.ID(key, gr.db.RelaxedDCPrior, false)
		gr.g.AddSoft(v, wid, h)
	}
	return nil
}

// relaxCtx carries one head cell's relaxed-grounding state through the
// counterpart loops. Passing it explicitly (rather than capturing it in
// closures) keeps the per-cell loop free of heap-allocated closures.
type relaxCtx struct {
	b         *dc.Bound
	hr        CellRef
	c         dataset.Cell
	dom       []int32
	headPreds []int
	bodyPreds []int
	counts    []int32
}

// tups returns the (t1, t2) pair with the head tuple in its role.
func (rc *relaxCtx) tups(t2 int) [2]int {
	if rc.hr.TupleVar == 0 {
		return [2]int{rc.c.Tuple, t2}
	}
	return [2]int{t2, rc.c.Tuple}
}

// relaxSingle handles single-tuple constraints: candidates completing the
// violation with the tuple's own initial values get one negative
// grounding. It returns the number of counterpart groundings (1 when the
// body holds).
func (gr *grounder) relaxSingle(rc *relaxCtx) int32 {
	tups := [2]int{rc.c.Tuple, -1}
	for _, i := range rc.bodyPreds {
		if !rc.b.HoldsPred(i, tups[0], tups[1]) {
			return 0
		}
	}
	for d, label := range rc.dom {
		ok := true
		for _, i := range rc.headPreds {
			if !gr.predHyp(rc.b, i, tups, rc.hr, label) {
				ok = false
				break
			}
		}
		if ok {
			rc.counts[d]++
		}
	}
	return 1
}

// relaxPair handles pairwise constraints: counterpart tuples are found via
// a body equality join when one exists, else via an equality predicate on
// the head itself, else by a (capped) scan. It returns the number of
// counterparts whose body predicates held (the grounding denominator) and
// a trust scale: when the conflict context is anchored on a cell that is
// itself noisy (the body-join cell of the head tuple), the testimony is
// halved — the violation may be resolvable by repairing that cell instead,
// the multi-cell blind spot Section 5.2 acknowledges.
func (gr *grounder) relaxPair(rc *relaxCtx) (int32, float64) {
	ds := gr.db.DS
	var total int32

	// Strategy 1: body equality join on initial values.
	if pi, headAttr, otherAttr := gr.bodyEqJoin(rc.b, rc.hr, rc.bodyPreds); pi >= 0 {
		probe := ds.Get(rc.c.Tuple, headAttr)
		if probe == dataset.Null {
			return 0, 1
		}
		scale := 1.0
		// The discount applies only when the join cell has an actual
		// alternative: a flagged cell with a singleton domain cannot be
		// the repair that resolves the violation.
		if jv := gr.queryVarOf(dataset.Cell{Tuple: rc.c.Tuple, Attr: headAttr}); jv >= 0 && len(gr.g.Vars[jv].Domain) >= 2 {
			scale = 0.5
		}
		for _, t2 := range gr.initIndex(otherAttr)[probe] {
			if gr.checkCounterpart(rc, t2) {
				total++
			}
		}
		return total, scale
	}
	// Strategy 2: the head predicate itself is an equality — candidates
	// index directly into the counterpart side. The per-cell dedup set is
	// the arena's epoch-marked tuple set, not a fresh map.
	if pi, otherAttr := gr.headEqJoin(rc.b, rc.hr, rc.headPreds); pi >= 0 {
		idx := gr.initIndex(otherAttr)
		gr.ar.nextSeen(ds.NumTuples())
		for _, label := range rc.dom {
			for _, t2 := range idx[dataset.Value(label)] {
				if !gr.ar.seen(t2) {
					if t2 != rc.c.Tuple {
						total++
					}
					gr.checkCounterpart(rc, t2)
				}
			}
		}
		return total, 1
	}
	// Strategy 3: scan.
	n := ds.NumTuples()
	cap := gr.cfg.MaxScanCounterparts
	cnt := 0
	for t2 := 0; t2 < n; t2++ {
		if t2 == rc.c.Tuple {
			continue
		}
		if gr.checkCounterpart(rc, t2) {
			total++
		}
		cnt++
		if cap > 0 && cnt >= cap {
			break
		}
	}
	return total, 1
}

// checkCounterpart accumulates violation counts for one counterpart and
// reports whether its body predicates held. The caller decides what
// enters the fraction denominator: for a body-equality join the relevant
// counterparts are the body-passers (the conflict context), while for a
// head-equality join every join-matched counterpart is relevant —
// otherwise a candidate with a single conflicting counterpart would
// always score the full −1.
func (gr *grounder) checkCounterpart(rc *relaxCtx, t2 int) bool {
	if t2 == rc.c.Tuple {
		return false
	}
	tups := rc.tups(t2)
	gr.out.Stats.PairsChecked++
	for _, i := range rc.bodyPreds {
		if !rc.b.HoldsPred(i, tups[0], tups[1]) {
			return false
		}
	}
	for d, label := range rc.dom {
		ok := true
		for _, i := range rc.headPreds {
			if !gr.predHyp(rc.b, i, tups, rc.hr, label) {
				ok = false
				break
			}
		}
		if ok {
			rc.counts[d]++
		}
	}
	return true
}

// bodyEqJoin finds a body equality predicate across tuple variables and
// returns its index plus the head-side and counterpart-side attributes.
func (gr *grounder) bodyEqJoin(b *dc.Bound, hr CellRef, bodyPreds []int) (pi, headAttr, otherAttr int) {
	for _, i := range bodyPreds {
		p := &b.Preds[i]
		if p.Op != dc.Eq || p.RightIsConst || p.LeftTuple == p.RightTuple {
			continue
		}
		if p.LeftTuple == hr.TupleVar {
			return i, p.LeftAttr, p.RightAttr
		}
		return i, p.RightAttr, p.LeftAttr
	}
	return -1, 0, 0
}

// headEqJoin finds an equality head predicate whose other side is a cell
// of the counterpart tuple, returning its index and that attribute.
func (gr *grounder) headEqJoin(b *dc.Bound, hr CellRef, headPreds []int) (pi, otherAttr int) {
	for _, i := range headPreds {
		p := &b.Preds[i]
		if p.Op != dc.Eq || p.RightIsConst || p.LeftTuple == p.RightTuple {
			continue
		}
		left := CellRef{TupleVar: p.LeftTuple, Attr: p.LeftAttr}
		right := CellRef{TupleVar: p.RightTuple, Attr: p.RightAttr}
		if left == hr {
			return i, p.RightAttr
		}
		if right == hr {
			return i, p.LeftAttr
		}
	}
	return -1, 0
}

// initIndex returns the initial-value index of attr (value → tuples).
// When the database carries a SharedIndex the per-attribute build is
// delegated to it (and so happens once across all shards); the grounder's
// dense attribute-indexed cache still skips the shared lock on repeat
// lookups.
func (gr *grounder) initIndex(attr int) map[dataset.Value][]int {
	if idx := gr.initIdx[attr]; idx != nil {
		return idx
	}
	if gr.db.Shared != nil {
		idx := gr.db.Shared.Init(attr)
		gr.initIdx[attr] = idx
		return idx
	}
	idx := make(map[dataset.Value][]int)
	for t := 0; t < gr.db.DS.NumTuples(); t++ {
		v := gr.db.DS.Get(t, attr)
		if v != dataset.Null {
			idx[v] = append(idx[v], t)
		}
	}
	gr.initIdx[attr] = idx
	return idx
}

// predReferences reports whether predicate i mentions the head cell
// reference.
func predReferences(b *dc.Bound, i int, hr CellRef) bool {
	p := &b.Preds[i]
	if p.LeftTuple == hr.TupleVar && p.LeftAttr == hr.Attr {
		return true
	}
	if !p.RightIsConst && p.RightTuple == hr.TupleVar && p.RightAttr == hr.Attr {
		return true
	}
	return false
}

// predHyp evaluates predicate i over the tuple pair with the head cell
// hypothetically set to label d (initial values everywhere else).
func (gr *grounder) predHyp(b *dc.Bound, i int, tups [2]int, hr CellRef, d int32) bool {
	p := &b.Preds[i]
	ds := gr.db.DS
	resolve := func(tupleVar, attr int) dataset.Value {
		if tupleVar == hr.TupleVar && attr == hr.Attr {
			return dataset.Value(d)
		}
		t := tups[tupleVar]
		if t < 0 {
			return dataset.Null
		}
		return ds.Get(t, attr)
	}
	lv := resolve(p.LeftTuple, p.LeftAttr)
	if lv == dataset.Null {
		return false
	}
	var rv dataset.Value
	var rstr string
	rightConst := false
	if p.RightIsConst {
		rv = p.ConstVal
		rstr = p.ConstStr
		rightConst = true
	} else {
		rv = resolve(p.RightTuple, p.RightAttr)
		if rv == dataset.Null {
			return false
		}
	}
	switch p.Op {
	case dc.Eq:
		return lv == rv
	case dc.Neq:
		return lv != rv
	}
	dict := ds.Dict()
	ls := dict.String(lv)
	if !rightConst {
		rstr = dict.String(rv)
	}
	return dc.Compare(p.Op, ls, rstr)
}
