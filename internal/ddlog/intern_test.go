package ddlog_test

import (
	"testing"

	"holoclean/internal/compile"
	"holoclean/internal/datagen"
	"holoclean/internal/dataset"
	"holoclean/internal/ddlog"
	"holoclean/internal/factor"
)

// TestIDBytesWarmZeroAllocs pins the per-factor tying-key mechanism: once
// a key is registered, looking it up from a byte buffer — the exact call
// the grounding hot loops make per factor — performs zero allocations.
func TestIDBytesWarmZeroAllocs(t *testing.T) {
	w := factor.NewWeights()
	w.Interner = factor.NewKeyInterner()
	key := []byte("ft|3|42|c7=19")
	want := w.IDBytes(key, 0, false)
	allocs := testing.AllocsPerRun(200, func() {
		if got := w.IDBytes(key, 0, false); got != want {
			t.Fatalf("IDBytes = %d, want %d", got, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm IDBytes allocated %v objects per call, want 0", allocs)
	}
}

// hospitalPrep compiles the hospital workload up to (but excluding)
// grounding, wiring the given interner and arena into the database.
func hospitalPrep(t *testing.T, interner *factor.KeyInterner) *compile.Prepared {
	t.Helper()
	g := datagen.Hospital(datagen.Config{Tuples: 200, Seed: 1})
	prep, err := compile.Prepare(g.Dirty, g.Constraints, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prep.DB.Interner = interner
	return prep
}

// TestHospitalGroundingInternsKeys pins the tentpole property on a real
// workload: grounding the hospital DC program a second time against a
// shared interner registers zero new key strings — every tying key of the
// re-grounding is served from the canonical store, so the per-factor key
// path never allocates a string after interning.
func TestHospitalGroundingInternsKeys(t *testing.T) {
	interner := factor.NewKeyInterner()
	prep := hospitalPrep(t, interner)
	g1, err := ddlog.Ground(prep.DB, prep.Program, ddlog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Graph.NumFactors() == 0 {
		t.Fatal("hospital grounding produced no factors")
	}
	warm := interner.Len()
	if warm == 0 {
		t.Fatal("first grounding interned no keys; interner is not wired")
	}
	g2, err := ddlog.Ground(prep.DB, prep.Program, ddlog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := interner.Len(); got != warm {
		t.Fatalf("re-grounding interned %d new keys, want 0 (per-factor key strings are not being reused)", got-warm)
	}
	if g1.Graph.Weights.Len() != g2.Graph.Weights.Len() {
		t.Fatalf("weight counts differ across groundings: %d vs %d", g1.Graph.Weights.Len(), g2.Graph.Weights.Len())
	}
	for i, k := range g1.Graph.Weights.Keys {
		if g2.Graph.Weights.Keys[i] != k {
			t.Fatalf("weight key %d differs: %q vs %q", i, k, g2.Graph.Weights.Keys[i])
		}
	}
}

// TestGroundArenaReuse pins that grounding through a pooled arena (the
// per-shard path) produces exactly the model a fresh grounding does, and
// that an arena can be handed from one grounding to the next.
func TestGroundArenaReuse(t *testing.T) {
	prep := hospitalPrep(t, factor.NewKeyInterner())
	fresh, err := ddlog.Ground(prep.DB, prep.Program, ddlog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ar := ddlog.AcquireArena()
	defer ddlog.ReleaseArena(ar)
	var pooled *ddlog.Grounded
	for round := 0; round < 2; round++ { // second round hits warm arrays
		pooled, err = ddlog.Ground(prep.DB, prep.Program, ddlog.Config{Arena: ar})
		if err != nil {
			t.Fatal(err)
		}
	}
	if fresh.Graph.NumFactors() != pooled.Graph.NumFactors() {
		t.Fatalf("factor counts differ: fresh %d, arena %d", fresh.Graph.NumFactors(), pooled.Graph.NumFactors())
	}
	if len(fresh.Cells) != len(pooled.Cells) {
		t.Fatalf("cell counts differ: fresh %d, arena %d", len(fresh.Cells), len(pooled.Cells))
	}
	for vi, c := range fresh.Cells {
		if pooled.Cells[vi] != c {
			t.Fatalf("cell %d differs: %v vs %v", vi, c, pooled.Cells[vi])
		}
		pv, ok := pooled.VarOf.Get(c)
		if !ok || pv != int32(vi) {
			t.Fatalf("arena VarOf(%v) = %d,%v, want %d", c, pv, ok, vi)
		}
	}
	// Cells outside the variable set must stay unmapped after reuse.
	if _, ok := pooled.VarOf.Get(dataset.Cell{Tuple: 0, Attr: 0}); ok != func() bool {
		_, fok := fresh.VarOf.Get(dataset.Cell{Tuple: 0, Attr: 0})
		return fok
	}() {
		t.Fatal("arena VarOf disagrees with fresh VarOf on an unmapped cell")
	}
}
