package ddlog

import (
	"sync"

	"holoclean/internal/dataset"
	"holoclean/internal/pruning"
)

// SharedIndex caches the dataset-wide indexes grounding consults — the
// per-attribute initial-value index and the per-attribute candidate-label
// buckets used to join denial constraints. A single SharedIndex is built
// from the global domains and shared read-mostly across the per-shard
// grounders of the sharded pipeline, so the O(|D|) index builds happen
// once per attribute instead of once per shard. All methods are safe for
// concurrent use.
type SharedIndex struct {
	ds      *dataset.Dataset
	domains *pruning.Domains

	mu   sync.RWMutex
	init map[int]map[dataset.Value][]int
	cand map[int]map[int32][]int
}

// NewSharedIndex returns an empty index over the dataset and the global
// (pre-shard) noisy-cell domains. domains may be nil, in which case
// candidate buckets degrade to initial values only.
func NewSharedIndex(ds *dataset.Dataset, domains *pruning.Domains) *SharedIndex {
	return &SharedIndex{
		ds:      ds,
		domains: domains,
		init:    make(map[int]map[dataset.Value][]int),
		cand:    make(map[int]map[int32][]int),
	}
}

// Rebind points the index at a mutated dataset and refreshed domains,
// dropping the cached per-attribute indexes named in dirtyAttrs and
// keeping the rest. An attribute's indexes may be kept only when nothing
// they were built from changed: no tuple's initial value on the
// attribute, no noisy cell's candidate set on it, and — because appends
// and deletions add or remove bucket entries in every attribute — the
// tuple count. Incremental cleaning sessions call this once per reclean
// so the O(|D|) index builds of untouched attributes survive the delta.
func (s *SharedIndex) Rebind(ds *dataset.Dataset, domains *pruning.Domains, dirtyAttrs map[int]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ds = ds
	s.domains = domains
	for a := range dirtyAttrs {
		delete(s.init, a)
		delete(s.cand, a)
	}
}

// Init returns the initial-value index of attr: value → tuples whose cell
// (t, attr) initially holds that value. Nulls are excluded.
func (s *SharedIndex) Init(attr int) map[dataset.Value][]int {
	s.mu.RLock()
	idx := s.init[attr]
	s.mu.RUnlock()
	if idx != nil {
		return idx
	}
	idx = make(map[dataset.Value][]int)
	for t := 0; t < s.ds.NumTuples(); t++ {
		if v := s.ds.Get(t, attr); v != dataset.Null {
			idx[v] = append(idx[v], t)
		}
	}
	s.mu.Lock()
	if prev := s.init[attr]; prev != nil {
		idx = prev // another shard built it concurrently; keep one copy
	} else {
		s.init[attr] = idx
	}
	s.mu.Unlock()
	return idx
}

// Candidates returns the candidate-label buckets of attr: label → tuples
// whose cell (t, attr) can take that label. Noisy cells contribute every
// value of their global pruned domain; all other cells contribute their
// initial value. This reproduces, from the global view, exactly the
// labels grounder.candidateLabels yields on a monolithic graph, so a
// shard joining through these buckets sees the same counterpart pairs the
// monolithic grounder would.
func (s *SharedIndex) Candidates(attr int) map[int32][]int {
	s.mu.RLock()
	idx := s.cand[attr]
	s.mu.RUnlock()
	if idx != nil {
		return idx
	}
	idx = make(map[int32][]int)
	for t := 0; t < s.ds.NumTuples(); t++ {
		c := dataset.Cell{Tuple: t, Attr: attr}
		var cands []dataset.Value
		if s.domains != nil {
			cands = s.domains.Of(c)
		}
		if len(cands) > 0 {
			for _, v := range cands {
				idx[int32(v)] = append(idx[int32(v)], t)
			}
			continue
		}
		if v := s.ds.Get(t, attr); v != dataset.Null {
			idx[int32(v)] = append(idx[int32(v)], t)
		}
	}
	s.mu.Lock()
	if prev := s.cand[attr]; prev != nil {
		idx = prev
	} else {
		s.cand[attr] = idx
	}
	s.mu.Unlock()
	return idx
}

// Scope restricts denial-constraint factor grounding to one shard of the
// sharded pipeline. A pair is grounded only when every tuple that would
// contribute query variables to the factor lies inside the shard; pairs
// reaching, on a constraint-referenced attribute, a query variable of
// another shard are skipped — the cross-shard independence approximation
// of Algorithm 3, applied to the end-to-end pipeline. Tuples whose
// referenced cells are all clean (or noisy only on attributes the
// constraint never mentions) always participate: the grounder folds them
// to constants, yielding exactly the factor a monolithic grounding
// emits.
type Scope struct {
	// InShard marks the tuples whose noisy cells this shard owns.
	InShard map[int]bool
	// QueryAttrs maps each tuple owning query variables in the global
	// model (across all shards) to the set of attributes those variables
	// live on.
	QueryAttrs map[int]map[int]bool
	// Boundary, when positive, grounds the pairs admits would reject
	// instead of skipping them: the out-of-shard side's query cells fold
	// to their observed values (the grounder's clean-cell path) and the
	// factor's weight is scaled by Boundary. This is the boundary-factor
	// damping of split components — a cavity-style extension of the
	// Algorithm 3 scope cut: where the cut drops a cross-shard correlation
	// entirely, damping keeps it as a weakened pull toward the neighbor's
	// observed value. Both sub-shards of a split ground their side of each
	// boundary pair, so a coefficient of 0.5 restores roughly one full
	// factor's worth of energy per cut pair. Zero (the default) keeps the
	// exact legacy cut.
	Boundary float64
}

// admits reports whether tuple t may fill a constraint role that
// references attrs. t == -1 (single-tuple constraints) always passes.
func (sc *Scope) admits(t int, attrs []int) bool {
	if sc == nil || t < 0 || sc.InShard[t] {
		return true
	}
	qa := sc.QueryAttrs[t]
	if qa == nil {
		return true
	}
	for _, a := range attrs {
		if qa[a] {
			return false
		}
	}
	return true
}
