package ddlog

import (
	"holoclean/internal/dataset"
	"holoclean/internal/dc"
	"holoclean/internal/factor"
)

// naryBuild accumulates one folded denial-constraint factor: predicates
// over query-variable slots, with clean and evidence cells folded to
// constants and trivially-satisfied predicates removed.
type naryBuild struct {
	vars   []int32
	slotOf map[int32]int32
	preds  []factor.Pred
	states int64 // product of slot domain sizes (paper-style grounding count)
}

func (nb *naryBuild) slot(v int32, g *factor.Graph) int32 {
	if s, ok := nb.slotOf[v]; ok {
		return s
	}
	s := int32(len(nb.vars))
	nb.vars = append(nb.vars, v)
	nb.slotOf[v] = s
	// Saturate instead of overflowing: unpruned domains make the
	// paper-style grounding count astronomically large (Example 5).
	const maxStates = int64(1) << 50
	if nb.states < maxStates {
		nb.states *= int64(len(g.Vars[v].Domain))
	}
	return s
}

var flipOp = map[dc.Op]dc.Op{dc.Eq: dc.Eq, dc.Neq: dc.Neq, dc.Sim: dc.Sim, dc.Lt: dc.Gt, dc.Gt: dc.Lt, dc.Leq: dc.Geq, dc.Geq: dc.Leq}

// foldFactor builds the compact factor for constraint b over the tuple
// pair (t1, t2). It returns nil when the factor is constant (no query
// variable remains, a predicate is unsatisfiable, or the conjunction is
// already refuted by initial values) and therefore must not be grounded.
func (gr *grounder) foldFactor(b *dc.Bound, t1, t2 int) *naryBuild {
	nb := &naryBuild{slotOf: make(map[int32]int32, 4), states: 1}
	ds := gr.db.DS
	tupOf := func(tv int) int {
		if tv == 1 {
			return t2
		}
		return t1
	}
	for i := range b.Preds {
		p := &b.Preds[i]
		leftCell := dataset.Cell{Tuple: tupOf(p.LeftTuple), Attr: p.LeftAttr}
		leftVar := gr.queryVarOf(leftCell)
		rightVar := int32(-1)
		var rightCell dataset.Cell
		if !p.RightIsConst {
			rightCell = dataset.Cell{Tuple: tupOf(p.RightTuple), Attr: p.RightAttr}
			rightVar = gr.queryVarOf(rightCell)
		}
		if leftVar < 0 && rightVar < 0 {
			// Fully constant predicate: decided by initial values now.
			if !b.HoldsPred(i, t1, t2) {
				return nil // conjunction can never hold
			}
			continue // predicate always holds; drop it from the factor
		}
		op := p.Op
		// Normalize so the variable side is on the left.
		lv, rv := leftVar, rightVar
		lc, rc := leftCell, rightCell
		rightIsConst := p.RightIsConst
		constLabel := int32(p.ConstVal)
		if lv < 0 {
			lv, rv = rv, lv
			lc, rc = rc, lc
			op = flipOp[op]
			rightIsConst = false
		}
		pred := factor.Pred{LeftSlot: nb.slot(lv, gr.g), Op: uint8(op)}
		switch {
		case rv >= 0:
			pred.RightSlot = nb.slot(rv, gr.g)
		case rightIsConst:
			pred.RightSlot = -1
			pred.RightConst = constLabel
		default:
			// Right side is a clean or evidence cell: fold its initial value.
			init := ds.Get(rc.Tuple, rc.Attr)
			if init == dataset.Null {
				return nil // predicates over nulls never hold
			}
			pred.RightSlot = -1
			pred.RightConst = int32(init)
		}
		// Cheap unsatisfiability checks against the variable's domain.
		if pred.RightSlot < 0 {
			dom := gr.g.Vars[lv].Domain
			switch dc.Op(pred.Op) {
			case dc.Eq:
				if !containsLabel(dom, pred.RightConst) {
					return nil
				}
			case dc.Neq:
				if len(dom) == 1 && dom[0] == pred.RightConst {
					return nil
				}
			}
		}
		nb.preds = append(nb.preds, pred)
	}
	if len(nb.preds) == 0 || len(nb.vars) == 0 {
		return nil // constant factor: uniform energy shift only
	}
	return nb
}

func containsLabel(dom []int32, l int32) bool {
	for _, d := range dom {
		if d == l {
			return true
		}
	}
	return false
}

// tuplesWithQueryRef returns the tuples that own at least one query
// variable among the constraint's attribute references for the given
// tuple role (or either role when role == -1). Dedup goes through the
// arena's epoch-marked tuple set, so repeated rule groundings allocate no
// per-call maps.
func (gr *grounder) tuplesWithQueryRef(b *dc.Bound, role int) []int {
	var attrs uint64 // attribute ids are small; overflow falls back below
	var attrsBig map[int]bool
	for _, r := range CellRefs(b) {
		if role == -1 || r.TupleVar == role {
			if r.Attr < 64 && attrsBig == nil {
				attrs |= 1 << uint(r.Attr)
			} else {
				if attrsBig == nil {
					attrsBig = make(map[int]bool)
					for a := 0; a < 64; a++ {
						if attrs&(1<<uint(a)) != 0 {
							attrsBig[a] = true
						}
					}
				}
				attrsBig[r.Attr] = true
			}
		}
	}
	hasAttr := func(a int) bool {
		if attrsBig != nil {
			return attrsBig[a]
		}
		return a < 64 && attrs&(1<<uint(a)) != 0
	}
	gr.ar.nextSeen(gr.db.DS.NumTuples())
	var out []int
	for vi, c := range gr.out.Cells {
		if gr.g.Vars[vi].Evidence || !hasAttr(c.Attr) {
			continue
		}
		if !gr.ar.seen(c.Tuple) {
			out = append(out, c.Tuple)
		}
	}
	return out
}

// groundDC grounds Algorithm 1's correlation factors for one constraint.
func (gr *grounder) groundDC(rule *Rule) error {
	ci := rule.Constraint
	b := gr.db.Bounds[ci]
	wid := gr.g.Weights.ID("dc|"+rule.Name, rule.FixedWeight, true)

	// Boundary damping (split components): pairs the scope would reject
	// ground anyway, at a damped fixed weight under a distinct tying key.
	// The out-of-shard side holds no variable in this shard's graph, so
	// foldFactor's clean-cell path folds it to its observed value — the
	// cavity assignment.
	damp := 0.0
	var dampWid int32
	if gr.db.Scope != nil && gr.db.Scope.Boundary > 0 {
		damp = gr.db.Scope.Boundary
		dampWid = gr.g.Weights.ID("dc~|"+rule.Name, rule.FixedWeight*damp, true)
	}

	// Attributes each tuple role contributes to the factor; a counterpart
	// whose query variables all sit on other attributes folds to
	// constants and stays admissible under any shard scope.
	var roleAttrs [2][]int
	if gr.db.Scope != nil {
		seen := [2]map[int]bool{make(map[int]bool), make(map[int]bool)}
		for _, ref := range CellRefs(b) {
			if !seen[ref.TupleVar][ref.Attr] {
				seen[ref.TupleVar][ref.Attr] = true
				roleAttrs[ref.TupleVar] = append(roleAttrs[ref.TupleVar], ref.Attr)
			}
		}
	}

	emit := func(t1, t2 int) {
		gr.out.Stats.PairsChecked++
		w := wid
		if !gr.db.Scope.admits(t1, roleAttrs[0]) || !gr.db.Scope.admits(t2, roleAttrs[1]) {
			if damp <= 0 {
				return
			}
			w = dampWid
		}
		if rule.Partition && gr.db.Groups != nil && !gr.sameGroup(ci, t1, t2) {
			return
		}
		nb := gr.foldFactor(b, t1, t2)
		if nb == nil {
			return
		}
		gr.g.AddNary(nb.vars, nb.preds, w)
		gr.out.Stats.PaperFactors += nb.states
	}

	if b.TupleVars == 1 {
		for _, t := range gr.tuplesWithQueryRef(b, 0) {
			emit(t, -1)
		}
		return nil
	}

	symmetric := gr.isSymmetric(ci)
	seen := make(map[[2]int]bool)
	emitPair := func(t1, t2 int) {
		if t1 == t2 {
			return
		}
		key := [2]int{t1, t2}
		if symmetric && t1 > t2 {
			key = [2]int{t2, t1}
		}
		if seen[key] {
			return
		}
		seen[key] = true
		emit(key[0], key[1])
	}

	joins := b.EqualityJoinAttrs()
	if len(joins) == 0 {
		return gr.groundDCScan(b, symmetric, emitPair)
	}
	la, ra := joins[0][0], joins[0][1]

	// Index every tuple under every label its t2-role join cell can take
	// (candidates for noisy cells, initial value otherwise), so pairs that
	// only violate under a hypothetical repair are still found.
	bucketR := gr.candBuckets(ra)
	for _, t1 := range gr.tuplesWithQueryRef(b, pickRole(symmetric, 0)) {
		for _, l := range gr.candidateLabels(dataset.Cell{Tuple: t1, Attr: la}) {
			for _, t2 := range bucketR[l] {
				emitPair(t1, t2)
			}
		}
	}
	if !symmetric {
		bucketL := gr.candBuckets(la)
		for _, t2 := range gr.tuplesWithQueryRef(b, 1) {
			for _, l := range gr.candidateLabels(dataset.Cell{Tuple: t2, Attr: ra}) {
				for _, t1 := range bucketL[l] {
					emitPair(t1, t2)
				}
			}
		}
	}
	return nil
}

// candBuckets returns label → tuples whose cell on attr can take that
// label. With a SharedIndex the dataset-wide build happens once across
// shards; otherwise it is built from the local graph, which on a
// monolithic grounding yields identical buckets.
func (gr *grounder) candBuckets(attr int) map[int32][]int {
	if gr.db.Shared != nil {
		return gr.db.Shared.Candidates(attr)
	}
	m := make(map[int32][]int)
	for t := 0; t < gr.db.DS.NumTuples(); t++ {
		for _, l := range gr.candidateLabels(dataset.Cell{Tuple: t, Attr: attr}) {
			m[l] = append(m[l], t)
		}
	}
	return m
}

// pickRole selects which tuple role the outer loop enumerates: for
// symmetric constraints either role covers all pairs.
func pickRole(symmetric bool, role int) int {
	if symmetric {
		return -1
	}
	return role
}

// groundDCScan is the pair-scan fallback for constraints with no equality
// join predicate. The outer loop covers tuples that are dirty in either
// role; both orientations are emitted and constant factors fold away.
func (gr *grounder) groundDCScan(b *dc.Bound, symmetric bool, emitPair func(t1, t2 int)) error {
	n := gr.db.DS.NumTuples()
	cap := gr.cfg.MaxScanCounterparts
	for _, t1 := range gr.tuplesWithQueryRef(b, -1) {
		cnt := 0
		for t2 := 0; t2 < n; t2++ {
			if t2 == t1 {
				continue
			}
			emitPair(t1, t2)
			if !symmetric {
				emitPair(t2, t1)
			}
			cnt++
			if cap > 0 && cnt >= cap {
				break
			}
		}
	}
	return nil
}
