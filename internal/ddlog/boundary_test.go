package ddlog

import (
	"testing"

	"holoclean/internal/dataset"
)

// boundaryScope narrows the fixture to a sub-shard owning only tuple 0,
// with tuples 1 and 2 owning query variables on Zip in other sub-shards.
func boundaryScope(damp float64) *Scope {
	return &Scope{
		InShard: map[int]bool{0: true},
		QueryAttrs: map[int]map[int]bool{
			0: {1: true}, 1: {1: true}, 2: {1: true},
		},
		Boundary: damp,
	}
}

func groundWithScope(t *testing.T, sc *Scope) *Grounded {
	t.Helper()
	fx := newFixture(t)
	// Narrow the domains to tuple 0's noisy cell, as the shard runner does.
	cells := []dataset.Cell{{Tuple: 0, Attr: 1}}
	cands := [][]dataset.Value{fx.db.Domains.Of(cells[0])}
	fx.db.Domains.Cells = cells
	fx.db.Domains.Candidates = cands
	fx.db.Scope = sc
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: DCFactors, Name: "fd", Constraint: 0, FixedWeight: 3})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBoundaryDampingOff pins the legacy Algorithm 3 cut: pairs reaching
// another sub-shard's query variables are skipped entirely.
func TestBoundaryDampingOff(t *testing.T) {
	g := groundWithScope(t, boundaryScope(0))
	if len(g.Graph.Naries) != 0 {
		t.Fatalf("scope cut without damping grounded %d factors, want 0", len(g.Graph.Naries))
	}
}

// TestBoundaryDampingGrounds: with damping, cross-boundary pairs ground
// with the out-of-shard side folded to its observed value and the weight
// scaled by the damping coefficient under a distinct tying key.
func TestBoundaryDampingGrounds(t *testing.T) {
	g := groundWithScope(t, boundaryScope(0.5))
	if len(g.Graph.Naries) == 0 {
		t.Fatal("damped boundary pairs were not grounded")
	}
	for i := range g.Graph.Naries {
		f := &g.Graph.Naries[i]
		// Only tuple 0 owns a variable in this sub-shard; the counterpart
		// side must have folded to a constant.
		if len(f.Vars) != 1 || g.Cells[f.Vars[0]].Tuple != 0 {
			t.Fatalf("boundary factor should touch only the in-shard variable, got vars %v", f.Vars)
		}
		key := g.Graph.Weights.Keys[f.Weight]
		if key != "dc~|fd" {
			t.Fatalf("boundary factor weight key = %q, want dc~|fd", key)
		}
		if w := g.Graph.Weights.W[f.Weight]; w != 1.5 {
			t.Fatalf("boundary weight = %v, want 3 * 0.5 = 1.5", w)
		}
		if !g.Graph.Weights.Fixed[f.Weight] {
			t.Fatal("boundary weight must stay fixed (not learnable)")
		}
		// The folded side must pin the counterpart's observed value: every
		// predicate's right side is a constant.
		for _, p := range f.Preds {
			if p.RightSlot >= 0 {
				t.Fatalf("boundary factor kept a variable counterpart: %+v", p)
			}
		}
	}
}

// TestBoundaryDampingKeepsInShardPairs: a scope that owns both conflicting
// tuples grounds their pair at full weight even when damping is enabled.
func TestBoundaryDampingKeepsInShardPairs(t *testing.T) {
	fx := newFixture(t)
	fx.db.Scope = &Scope{
		InShard: map[int]bool{0: true, 1: true, 2: true},
		QueryAttrs: map[int]map[int]bool{
			0: {1: true}, 1: {1: true}, 2: {1: true},
		},
		Boundary: 0.5,
	}
	prog := &Program{}
	prog.Add(&Rule{Kind: RandomVariables})
	prog.Add(&Rule{Kind: DCFactors, Name: "fd", Constraint: 0, FixedWeight: 3})
	g, err := Ground(fx.db, prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Graph.Naries) == 0 {
		t.Fatal("expected in-shard DC factors")
	}
	for i := range g.Graph.Naries {
		f := &g.Graph.Naries[i]
		if key := g.Graph.Weights.Keys[f.Weight]; key != "dc|fd" {
			t.Fatalf("in-shard factor got key %q, want dc|fd (full weight)", key)
		}
	}
}
