// Package pruning implements HoloClean's domain-pruning optimization
// (Section 5.1.1, Algorithm 2). Each noisy cell c gets a random variable
// T_c whose domain would by default be the full active domain of its
// attribute — which makes grounding combinatorially explosive. Algorithm 2
// instead admits as repair candidates only values v that co-occur with the
// values of c's sibling cells above a threshold τ:
//
//	Pr[v | v_c'] = #(v, v_c' together) / #v_c'  ≥  τ
//
// Raising τ trades recall for precision and scalability (Figures 3 and 4).
package pruning

import (
	"sort"

	"holoclean/internal/dataset"
	"holoclean/internal/stats"
)

// Domains maps each noisy cell to its pruned candidate set.
type Domains struct {
	Cells      []dataset.Cell    // noisy cells in deterministic order
	Candidates [][]dataset.Value // Candidates[i] for Cells[i], sorted, includes the initial value

	index map[dataset.Cell]int
}

// Config controls Algorithm 2.
type Config struct {
	// Tau is the co-occurrence probability threshold τ. The paper sweeps
	// {0.3, 0.5, 0.7, 0.9}.
	Tau float64
	// MaxCandidates caps each cell's domain (0 = unlimited). When the cap
	// binds, the highest-frequency candidates are kept. This bounds worst
	// cases where τ is tiny and an attribute has a huge active domain.
	MaxCandidates int
	// KeepInitial forces the observed value into the candidate set. The
	// minimality prior requires it; defaults to true in Compute.
	KeepInitial bool
	// FullDomain disables pruning: every cell may take any value from its
	// attribute's active domain (the strategy of [7, 12], used as the
	// no-pruning ablation).
	FullDomain bool
}

// NewDomains builds a Domains from parallel cell and candidate slices,
// wiring the cell index Compute would have built.
func NewDomains(cells []dataset.Cell, candidates [][]dataset.Value) *Domains {
	d := &Domains{Cells: cells, Candidates: candidates, index: make(map[dataset.Cell]int, len(cells))}
	for i, c := range cells {
		d.index[c] = i
	}
	return d
}

// Compute runs Algorithm 2 for the given noisy cells.
func Compute(ds *dataset.Dataset, st *stats.Stats, noisy []dataset.Cell, cfg Config) *Domains {
	d := &Domains{
		Cells:      noisy,
		Candidates: make([][]dataset.Value, len(noisy)),
		index:      make(map[dataset.Cell]int, len(noisy)),
	}
	activeDomains := make(map[int][]dataset.Value)
	domainOf := func(a int) []dataset.Value {
		if dom, ok := activeDomains[a]; ok {
			return dom
		}
		dom := ds.ActiveDomain(a)
		activeDomains[a] = dom
		return dom
	}
	for i, c := range noisy {
		d.index[c] = i
		set := make(map[dataset.Value]struct{})
		if cfg.FullDomain {
			for _, v := range domainOf(c.Attr) {
				set[v] = struct{}{}
			}
		} else {
			// For each sibling cell c' of c, admit values of c's attribute
			// whose conditional probability given v_c' clears τ.
			for g := 0; g < ds.NumAttrs(); g++ {
				if g == c.Attr {
					continue
				}
				vg := ds.Get(c.Tuple, g)
				if vg == dataset.Null {
					continue
				}
				for _, v := range st.ValuesAbove(c.Attr, g, vg, cfg.Tau) {
					set[v] = struct{}{}
				}
			}
		}
		if init := ds.Get(c.Tuple, c.Attr); init != dataset.Null {
			set[init] = struct{}{}
		}
		cands := make([]dataset.Value, 0, len(set))
		for v := range set {
			cands = append(cands, v)
		}
		if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
			sort.Slice(cands, func(x, y int) bool {
				fx, fy := st.Freq(c.Attr, cands[x]), st.Freq(c.Attr, cands[y])
				if fx != fy {
					return fx > fy
				}
				return cands[x] < cands[y]
			})
			init := ds.Get(c.Tuple, c.Attr)
			kept := cands[:cfg.MaxCandidates]
			if init != dataset.Null && !contains(kept, init) {
				kept[len(kept)-1] = init
			}
			cands = kept
		}
		sort.Slice(cands, func(x, y int) bool { return cands[x] < cands[y] })
		d.Candidates[i] = cands
	}
	return d
}

func contains(vs []dataset.Value, v dataset.Value) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// Inject adds extra candidate values (e.g. suggestions from external
// dictionaries, which Example 3 admits into Domain) to a cell's domain.
// Unknown cells are ignored.
func (d *Domains) Inject(c dataset.Cell, v dataset.Value) {
	i, ok := d.index[c]
	if !ok {
		return
	}
	if contains(d.Candidates[i], v) {
		return
	}
	d.Candidates[i] = append(d.Candidates[i], v)
	sort.Slice(d.Candidates[i], func(x, y int) bool { return d.Candidates[i][x] < d.Candidates[i][y] })
}

// Of returns the candidate set of cell c, or nil when c is not a noisy cell.
func (d *Domains) Of(c dataset.Cell) []dataset.Value {
	if i, ok := d.index[c]; ok {
		return d.Candidates[i]
	}
	return nil
}

// Index returns the position of cell c in Cells, or -1.
func (d *Domains) Index(c dataset.Cell) int {
	if i, ok := d.index[c]; ok {
		return i
	}
	return -1
}

// TotalCandidates sums all candidate-set sizes — the number of Value?
// random-variable instantiations the grounder will create.
func (d *Domains) TotalCandidates() int {
	n := 0
	for _, cs := range d.Candidates {
		n += len(cs)
	}
	return n
}

// MaxDomain returns the largest candidate-set size.
func (d *Domains) MaxDomain() int {
	m := 0
	for _, cs := range d.Candidates {
		if len(cs) > m {
			m = len(cs)
		}
	}
	return m
}
