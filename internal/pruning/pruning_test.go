package pruning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"holoclean/internal/dataset"
	"holoclean/internal/stats"
)

func sample() (*dataset.Dataset, []dataset.Cell) {
	ds := dataset.New([]string{"Zip", "City", "State"})
	ds.Append([]string{"60608", "Chicago", "IL"})
	ds.Append([]string{"60608", "Chicago", "IL"})
	ds.Append([]string{"60608", "Cicago", "IL"})
	ds.Append([]string{"60609", "Chicago", "IL"})
	ds.Append([]string{"60609", "Springfield", "IL"})
	noisy := []dataset.Cell{
		{Tuple: 2, Attr: 1}, // the Cicago cell
		{Tuple: 3, Attr: 0}, // a zip cell
	}
	return ds, noisy
}

func TestComputeIncludesInitial(t *testing.T) {
	ds, noisy := sample()
	st := stats.Collect(ds)
	d := Compute(ds, st, noisy, Config{Tau: 0.9})
	for i, c := range d.Cells {
		init := ds.Get(c.Tuple, c.Attr)
		found := false
		for _, v := range d.Candidates[i] {
			if v == init {
				found = true
			}
		}
		if !found {
			t.Errorf("cell %v: initial value pruned away", c)
		}
	}
}

func TestComputeCandidates(t *testing.T) {
	ds, noisy := sample()
	st := stats.Collect(ds)
	d := Compute(ds, st, noisy, Config{Tau: 0.5})
	// The Cicago cell: siblings Zip=60608 (Pr[Chicago|60608]=2/3 ≥ .5)
	// and State=IL (Pr[Chicago|IL]=3/5 ≥ .5) admit Chicago; init stays.
	cands := d.Of(noisy[0])
	if len(cands) != 2 {
		t.Fatalf("Cicago cell candidates = %d, want 2", len(cands))
	}
	var have []string
	for _, v := range cands {
		have = append(have, ds.Dict().String(v))
	}
	want := map[string]bool{"Chicago": true, "Cicago": true}
	for _, s := range have {
		if !want[s] {
			t.Errorf("unexpected candidate %q", s)
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// Property: raising τ can only shrink candidate sets, and every
	// candidate set at τ_high is contained in the set at τ_low.
	ds, noisy := sample()
	st := stats.Collect(ds)
	f := func(a, b uint8) bool {
		lo := float64(a%90+5) / 100
		hi := float64(b%90+5) / 100
		if lo > hi {
			lo, hi = hi, lo
		}
		dLo := Compute(ds, st, noisy, Config{Tau: lo})
		dHi := Compute(ds, st, noisy, Config{Tau: hi})
		for i := range dHi.Cells {
			inLo := make(map[dataset.Value]bool)
			for _, v := range dLo.Candidates[i] {
				inLo[v] = true
			}
			for _, v := range dHi.Candidates[i] {
				if !inLo[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFullDomain(t *testing.T) {
	ds, noisy := sample()
	st := stats.Collect(ds)
	d := Compute(ds, st, noisy, Config{FullDomain: true})
	city := ds.AttrIndex("City")
	_ = city
	cands := d.Of(noisy[0])
	if len(cands) != len(ds.ActiveDomain(noisy[0].Attr)) {
		t.Errorf("FullDomain candidates = %d, want the whole active domain %d",
			len(cands), len(ds.ActiveDomain(noisy[0].Attr)))
	}
}

func TestMaxCandidates(t *testing.T) {
	ds, noisy := sample()
	st := stats.Collect(ds)
	d := Compute(ds, st, noisy, Config{FullDomain: true, MaxCandidates: 2})
	for i, c := range d.Cells {
		if len(d.Candidates[i]) > 2 {
			t.Errorf("cell %v: %d candidates exceed cap", c, len(d.Candidates[i]))
		}
		init := ds.Get(c.Tuple, c.Attr)
		found := false
		for _, v := range d.Candidates[i] {
			if v == init {
				found = true
			}
		}
		if init != dataset.Null && !found {
			t.Errorf("cap evicted the initial value")
		}
	}
}

func TestInject(t *testing.T) {
	ds, noisy := sample()
	st := stats.Collect(ds)
	d := Compute(ds, st, noisy, Config{Tau: 0.9})
	extra := ds.Dict().Intern("99999")
	before := len(d.Of(noisy[1]))
	d.Inject(noisy[1], extra)
	after := d.Of(noisy[1])
	if len(after) != before+1 {
		t.Fatalf("Inject did not grow the domain")
	}
	d.Inject(noisy[1], extra) // idempotent
	if len(d.Of(noisy[1])) != before+1 {
		t.Errorf("duplicate Inject grew the domain")
	}
	// Candidates stay sorted.
	for i := 1; i < len(after); i++ {
		if after[i-1] >= after[i] {
			t.Errorf("candidates not sorted after Inject")
		}
	}
	// Injecting into an unknown cell is a no-op.
	d.Inject(dataset.Cell{Tuple: 99, Attr: 0}, extra)
}

func TestAccessors(t *testing.T) {
	ds, noisy := sample()
	st := stats.Collect(ds)
	d := Compute(ds, st, noisy, Config{Tau: 0.5})
	if d.Index(noisy[0]) != 0 || d.Index(dataset.Cell{Tuple: 9, Attr: 9}) != -1 {
		t.Errorf("Index wrong")
	}
	if d.Of(dataset.Cell{Tuple: 9, Attr: 9}) != nil {
		t.Errorf("Of unknown cell should be nil")
	}
	if d.TotalCandidates() <= 0 || d.MaxDomain() <= 0 {
		t.Errorf("size accounting wrong")
	}
}

func TestNullSiblingsSkipped(t *testing.T) {
	ds := dataset.New([]string{"A", "B"})
	ds.Append([]string{"x", ""})
	ds.Append([]string{"y", ""})
	st := stats.Collect(ds)
	noisy := []dataset.Cell{{Tuple: 0, Attr: 0}}
	d := Compute(ds, st, noisy, Config{Tau: 0.1})
	// Only the initial value: the sole sibling is null.
	if cands := d.Of(noisy[0]); len(cands) != 1 {
		t.Errorf("candidates = %d, want 1 (init only)", len(cands))
	}
}

func TestRandomizedContainsCooccurring(t *testing.T) {
	// Every value co-occurring with a sibling above τ must be in the
	// candidate set.
	rng := rand.New(rand.NewSource(3))
	ds := dataset.New([]string{"A", "B"})
	vals := []string{"u", "v", "w"}
	for i := 0; i < 60; i++ {
		ds.Append([]string{vals[rng.Intn(3)], vals[rng.Intn(3)]})
	}
	st := stats.Collect(ds)
	noisy := []dataset.Cell{{Tuple: 0, Attr: 0}}
	tau := 0.3
	d := Compute(ds, st, noisy, Config{Tau: tau})
	vb := ds.Get(0, 1)
	inSet := make(map[dataset.Value]bool)
	for _, v := range d.Of(noisy[0]) {
		inSet[v] = true
	}
	for _, v := range ds.ActiveDomain(0) {
		if st.CondProb(0, v, 1, vb) >= tau && !inSet[v] {
			t.Errorf("value %q co-occurs above τ but was pruned", ds.Dict().String(v))
		}
	}
}
