package telemetry

import "time"

// Tracer records per-stage pipeline durations into one stage-labeled
// histogram family. A nil *Tracer is the disabled state: Start returns
// a zero Span and Observe is a no-op, both allocation-free, so the
// pipeline threads a Tracer through unconditionally.
type Tracer struct {
	stages *HistogramVec
}

// NewTracer returns a tracer recording into the named histogram family
// on r (nil r yields a nil, disabled tracer).
func NewTracer(r *Registry, name, help string) *Tracer {
	if r == nil {
		return nil
	}
	return &Tracer{stages: r.HistogramVec(name, help, LatencyBuckets, "stage")}
}

// Span is one in-flight stage measurement. The zero Span is inert.
type Span struct {
	t     *Tracer
	stage string
	start time.Time
}

// Start opens a span for stage; call End on the returned value when
// the stage completes. Nil-safe.
func (t *Tracer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: time.Now()}
}

// End records the elapsed time since Start into the stage histogram.
func (s Span) End() {
	if s.t != nil {
		s.t.Observe(s.stage, time.Since(s.start))
	}
}

// Observe records an already-measured stage duration (for stages whose
// time is accumulated elsewhere, e.g. summed across shard workers).
// Negative durations are dropped. Nil-safe.
func (t *Tracer) Observe(stage string, d time.Duration) {
	if t == nil || d < 0 {
		return
	}
	t.stages.With(stage).Observe(d.Seconds())
}
