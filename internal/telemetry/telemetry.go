// Package telemetry is a zero-dependency metrics registry: counters,
// gauges, and bounded-bucket histograms with streaming quantiles,
// rendered in the Prometheus text exposition format.
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every constructor on a nil *Registry
//     returns a nil metric handle, and every method on a nil handle is
//     a no-op that performs zero allocations. Call sites therefore
//     never branch on "is telemetry on" — they just call Observe/Inc
//     unconditionally, and the nil-receiver path compiles down to a
//     predicted-not-taken branch.
//  2. Hot-path updates are lock-cheap. Histograms shard their bucket
//     counters across independently allocated atomic arrays so that
//     concurrent Observe calls from many goroutines do not contend on
//     one cache line; counters and gauges are single atomics.
//  3. Output is deterministic. WritePrometheus sorts families and
//     label sets, so two scrapes of the same state are byte-identical.
//
// Labeled families (the *Vec types) cap their child cardinality: once
// a vec holds maxVecChildren distinct label sets, further label values
// collapse into a single child whose label values are all "other".
// This bounds scrape size no matter how many tenants a server hosts.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// maxVecChildren bounds the number of distinct label sets a single
// labeled family will track before collapsing into the "other" child.
const maxVecChildren = 64

// overflowLabel is the label value used for every label of the
// overflow child once a vec is at capacity.
const overflowLabel = "other"

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry. A nil *Registry is
// the disabled state: all constructors return nil handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at render time
	hooks    []func()
}

// family is one named metric family: exactly one of the metric
// pointers is non-nil.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before rendering. Use it to sample point-in-time gauges (queue
// depth, WAL bytes, replication lag) from their authoritative sources
// instead of pushing every change. No-op on a nil registry.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// register adds a family, or returns the existing one with the same
// name. Registering the same name with a different shape panics: that
// is a programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.families[name] = f
	r.names = nil
	return f
}

// Counter returns the monotonically increasing counter named name,
// creating it on first use. Nil-safe.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "counter")
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge returns the gauge named name, creating it on first use.
// Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "gauge")
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram returns the histogram named name with the given bucket
// upper bounds (ascending; +Inf is implicit), creating it on first
// use. Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "histogram")
	if f.hist == nil {
		f.hist = newHistogram(bounds)
	}
	return f.hist
}

// CounterVec returns the labeled counter family named name. Nil-safe.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "counter")
	if f.counterVec == nil {
		f.counterVec = &CounterVec{labels: labels, children: make(map[string]*Counter)}
	}
	return f.counterVec
}

// GaugeVec returns the labeled gauge family named name. Nil-safe.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "gauge")
	if f.gaugeVec == nil {
		f.gaugeVec = &GaugeVec{labels: labels, children: make(map[string]*Gauge)}
	}
	return f.gaugeVec
}

// HistogramVec returns the labeled histogram family named name with
// the given bucket bounds. Nil-safe.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "histogram")
	if f.histVec == nil {
		f.histVec = &HistogramVec{labels: labels, bounds: bounds, children: make(map[string]*Histogram)}
	}
	return f.histVec
}

// Counter is a monotonically increasing uint64. All methods are safe
// on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
// All methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// vecKey joins label values with a separator that cannot appear in
// well-formed label values.
func vecKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// overflowValues returns len(labels) copies of overflowLabel.
func overflowValues(n int) []string {
	vs := make([]string, n)
	for i := range vs {
		vs[i] = overflowLabel
	}
	return vs
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the given label values, creating
// it if the vec is under its cardinality cap and collapsing to the
// "other" child otherwise. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := vecKey(values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c != nil {
		return c
	}
	if len(v.children) >= maxVecChildren {
		key = vecKey(overflowValues(len(v.labels)))
		if c = v.children[key]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.children[key] = c
	return c
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Gauge
}

// With returns the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := vecKey(values)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[key]; g != nil {
		return g
	}
	if len(v.children) >= maxVecChildren {
		key = vecKey(overflowValues(len(v.labels)))
		if g = v.children[key]; g != nil {
			return g
		}
	}
	g = &Gauge{}
	v.children[key] = g
	return g
}

// Reset drops every child, so the next scrape reflects only label sets
// re-populated since. Used by scrape hooks that rebuild point-in-time
// gauges (e.g. replication lag) from an authoritative map. Nil-safe.
func (v *GaugeVec) Reset() {
	if v == nil {
		return
	}
	v.mu.Lock()
	clear(v.children)
	v.mu.Unlock()
}

// HistogramVec is a histogram family keyed by label values; every
// child shares the vec's bucket bounds.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values.
// Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := vecKey(values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h != nil {
		return h
	}
	if len(v.children) >= maxVecChildren {
		key = vecKey(overflowValues(len(v.labels)))
		if h = v.children[key]; h != nil {
			return h
		}
	}
	h = newHistogram(v.bounds)
	v.children[key] = h
	return h
}

// WritePrometheus runs scrape hooks, then renders every family in the
// Prometheus text exposition format, families sorted by name and
// children sorted by label values. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	if r.names == nil {
		r.names = make([]string, 0, len(r.families))
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
	}
	names := r.names
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	switch {
	case f.counter != nil:
		writeSample(b, f.name, "", strconv.FormatUint(f.counter.Value(), 10))
	case f.gauge != nil:
		writeSample(b, f.name, "", formatFloat(f.gauge.Value()))
	case f.hist != nil:
		writeHistogram(b, f.name, "", f.hist)
	case f.counterVec != nil:
		v := f.counterVec
		v.mu.RLock()
		for _, key := range sortedKeys(v.children) {
			writeSample(b, f.name, labelString(v.labels, strings.Split(key, "\x1f")), strconv.FormatUint(v.children[key].Value(), 10))
		}
		v.mu.RUnlock()
	case f.gaugeVec != nil:
		v := f.gaugeVec
		v.mu.RLock()
		for _, key := range sortedKeys(v.children) {
			writeSample(b, f.name, labelString(v.labels, strings.Split(key, "\x1f")), formatFloat(v.children[key].Value()))
		}
		v.mu.RUnlock()
	case f.histVec != nil:
		v := f.histVec
		v.mu.RLock()
		for _, key := range sortedKeys(v.children) {
			writeHistogram(b, f.name, labelString(v.labels, strings.Split(key, "\x1f")), v.children[key])
		}
		v.mu.RUnlock()
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeSample emits `name{labels} value` (labels may be empty).
func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// writeHistogram emits the _bucket/_sum/_count triplet for one
// histogram child. extraLabels is the rendered label pairs without the
// le label, or "".
func writeHistogram(b *strings.Builder, name, extraLabels string, h *Histogram) {
	counts, count, sum := h.snapshot()
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		labels := `le="` + le + `"`
		if extraLabels != "" {
			labels = extraLabels + "," + labels
		}
		writeSample(b, name+"_bucket", labels, strconv.FormatUint(cum, 10))
	}
	writeSample(b, name+"_sum", extraLabels, formatFloat(sum))
	writeSample(b, name+"_count", extraLabels, strconv.FormatUint(count, 10))
}

// labelString renders `k1="v1",k2="v2"` with escaped values.
func labelString(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
