package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"unsafe"
)

// histShards is the number of independent counter arrays a histogram
// spreads its updates over. Must be a power of two.
const histShards = 8

// LatencyBuckets is the default bucket layout for duration histograms
// (unit: seconds): 1.25x geometric growth from 100µs to ~17s, so a
// quantile read off the cumulative buckets is within 25% relative
// error of the true value (tighter in practice because estimates
// interpolate within the bucket).
var LatencyBuckets = ExponentialBuckets(100e-6, 1.25, 55)

// SizeBuckets is the default layout for count-valued histograms
// (batch sizes, shard counts): powers of two from 1 to 8192.
var SizeBuckets = ExponentialBuckets(1, 2, 14)

// ExponentialBuckets returns n bucket upper bounds starting at start
// and growing by factor each step.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Histogram counts observations into fixed upper-bound buckets
// (ascending bounds, implicit +Inf overflow bucket) and tracks total
// count and sum. Updates go to one of histShards independent atomic
// arrays, picked by the caller's stack address, so concurrent
// observers rarely share cache lines; reads aggregate across shards.
// All methods are safe on a nil receiver.
type Histogram struct {
	bounds []float64
	shards [histShards]histShard
}

type histShard struct {
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// pad the shard structs apart so the count/sum hot words of
	// neighbouring shards do not share a cache line.
	_ [4]uint64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// shardIndex picks a shard from the goroutine's stack address.
// Different goroutines run on stacks allocated at distinct 8KiB+
// regions, so shifting off the within-stack offset spreads concurrent
// observers across shards; the choice only affects contention, never
// aggregated values, so skew or stack moves are harmless.
func shardIndex() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe)) >> 13
	return int((p ^ p>>3) & (histShards - 1))
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or len(bounds) for +Inf
	sh := &h.shards[shardIndex()]
	sh.counts[i].Add(1)
	sh.count.Add(1)
	for {
		old := sh.sum.Load()
		if sh.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.shards {
		total += h.shards[i].count.Load()
	}
	return total
}

// snapshot aggregates per-bucket counts (len(bounds)+1, non-
// cumulative), total count, and sum across shards. The read is not
// atomic with respect to concurrent Observe calls; like any Prometheus
// scrape it sees some prefix of in-flight updates.
func (h *Histogram) snapshot() (counts []uint64, count uint64, sum float64) {
	counts = make([]uint64, len(h.bounds)+1)
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.counts {
			counts[i] += sh.counts[i].Load()
		}
		count += sh.count.Load()
		sum += math.Float64frombits(sh.sum.Load())
	}
	// Concurrent observers bump the bucket before the total; make the
	// rendered count consistent with the buckets.
	var bucketTotal uint64
	for _, c := range counts {
		bucketTotal += c
	}
	count = bucketTotal
	return counts, count, sum
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by walking the
// cumulative buckets and interpolating linearly within the bucket that
// crosses the target rank. Values in the +Inf bucket clamp to the
// largest finite bound. Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (target - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
