package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Re-registration returns the same handle.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registering a counter returned a different handle")
	}
}

func TestRegisterTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "help")
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	counts, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", sum)
	}
	// le semantics: v == bound lands in that bucket.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
}

// TestHistogramConcurrency hammers one histogram from many goroutines;
// under -race this doubles as the data-race check, and the final
// count/sum must be exact because every update is atomic.
func TestHistogramConcurrency(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Float64() * 0.1)
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	_, count, sum := h.snapshot()
	if count != goroutines*perG {
		t.Fatalf("snapshot count = %d, want %d", count, goroutines*perG)
	}
	if sum <= 0 || sum > goroutines*perG*0.1 {
		t.Fatalf("snapshot sum = %v out of range", sum)
	}
}

// TestQuantileErrorBounds checks estimated quantiles against a sorted
// reference sample. LatencyBuckets grow 1.25x per bucket, so the
// estimate must land within 25% relative error of the true value.
func TestQuantileErrorBounds(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [200µs, 2s]: spans many buckets.
		vals[i] = 200e-6 * math.Pow(1e4, rng.Float64())
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := vals[int(q*float64(n-1))]
		est := h.Quantile(q)
		relErr := math.Abs(est-truth) / truth
		if relErr > 0.25 {
			t.Errorf("q=%v: est %v vs true %v, rel err %.3f > 0.25", q, est, truth, relErr)
		}
	}
	if got := (*Histogram)(nil).Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
	if got := newHistogram(LatencyBuckets).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

// TestWritePrometheusDeterministic renders the same registry twice and
// requires byte-identical output, and spot-checks the text format.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(3)
	r.Gauge("a_gauge", "first family").Set(1.5)
	hv := r.HistogramVec("c_seconds", "histogram family", []float64{1, 2}, "stage")
	hv.With("learn").Observe(0.5)
	hv.With("infer").Observe(3)
	cv := r.CounterVec("d_total", "labeled counter", "endpoint", "class")
	cv.With("GET /metrics", "2xx").Inc()

	var b1, b2 bytes.Buffer
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two scrapes differ:\n%s\n----\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# TYPE b_total counter\nb_total 3\n",
		`c_seconds_bucket{stage="infer",le="+Inf"} 1`,
		`c_seconds_bucket{stage="learn",le="1"} 1`,
		`c_seconds_sum{stage="learn"} 0.5`,
		`c_seconds_count{stage="learn"} 1`,
		`d_total{endpoint="GET /metrics",class="2xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Families render in sorted name order.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("families not sorted by name")
	}
}

func TestScrapeHookRunsBeforeRender(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sampled", "set by hook")
	r.OnScrape(func() { g.Set(42) })
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sampled 42\n") {
		t.Fatalf("hook did not run before render:\n%s", b.String())
	}
}

// TestVecCardinalityCap fills a vec past maxVecChildren and checks the
// overflow collapses into the "other" child.
func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("tenants_total", "per tenant", "tenant")
	for i := 0; i < maxVecChildren+10; i++ {
		cv.With(string(rune('a'+i%26)) + string(rune('0'+i/26))).Inc()
	}
	cv.mu.RLock()
	n := len(cv.children)
	other := cv.children[overflowLabel]
	cv.mu.RUnlock()
	if n > maxVecChildren+1 {
		t.Fatalf("vec grew to %d children, cap is %d+overflow", n, maxVecChildren)
	}
	if other == nil || other.Value() == 0 {
		t.Fatal("overflow observations did not land in the \"other\" child")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e_total", "escapes", "v").With("a\"b\\c\nd").Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `e_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

// TestNilRegistryNoops drives the full API surface through nil
// receivers: nothing may panic, and reads return zero values.
func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(2)
	g := r.Gauge("y", "")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("z", "", LatencyBuckets)
	h.Observe(1)
	r.CounterVec("cv", "", "l").With("a").Inc()
	r.GaugeVec("gv", "", "l").With("a").Set(1)
	r.GaugeVec("gv", "", "l").Reset()
	r.HistogramVec("hv", "", LatencyBuckets, "l").With("a").Observe(1)
	r.OnScrape(func() {})
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics returned nonzero values")
	}
	tr := NewTracer(nil, "t", "")
	sp := tr.Start("learn")
	sp.End()
	tr.Observe("learn", time.Second)
}

// TestNoopPathZeroAllocs pins the disabled path at zero allocations:
// with telemetry off, every handle is nil and the per-sweep hot loop
// must not allocate, preserving the pipeline's zero-alloc warmed-sweep
// guarantee.
func TestNoopPathZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	h := r.Histogram("z", "", LatencyBuckets)
	hv := r.HistogramVec("hv", "", LatencyBuckets, "l")
	tr := NewTracer(nil, "t", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.5)
		hv.With("a").Observe(0.5)
		sp := tr.Start("learn")
		sp.End()
		tr.Observe("infer", time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("no-op path allocates %v per run, want 0", allocs)
	}
}

func TestTracerRecords(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "stage_seconds", "per-stage")
	sp := tr.Start("learn")
	sp.End()
	tr.Observe("infer", 250*time.Millisecond)
	tr.Observe("infer", -time.Second) // dropped
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`stage_seconds_count{stage="learn"} 1`,
		`stage_seconds_count{stage="infer"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkHistogramObserveNoop(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}
