package holoclean

import (
	"errors"
	"fmt"
	"sort"

	"holoclean/internal/dataset"
)

// ErrInvalidFeedback tags feedback-batch validation failures (cell out
// of range, empty value, duplicate confirmation), so callers — the
// serve package maps them to 400 — can tell a rejected batch from a
// pipeline failure with errors.Is.
var ErrInvalidFeedback = errors.New("holoclean: invalid feedback")

// Feedback is a user-confirmed cell value — the raw material of the
// paper's Section 2.2 feedback loop: "we can ask users to verify repairs
// with low marginal probabilities and use those as labeled examples to
// retrain the parameters of HoloClean's model".
type Feedback struct {
	Cell  Cell
	Value string
}

// LowConfidenceRepairs returns the proposed repairs whose marginal
// probability is below threshold, ordered by ascending confidence — the
// repairs worth soliciting user verification for. Equal probabilities are
// tie-broken by (Tuple, Attr), so the ordering — and any pagination over
// it — is fully deterministic across identical runs.
func (r *Result) LowConfidenceRepairs(threshold float64) []Repair {
	var out []Repair
	for _, rep := range r.Repairs {
		if rep.Probability < threshold {
			out = append(out, rep)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability < out[j].Probability
		}
		if out[i].Tuple != out[j].Tuple {
			return out[i].Tuple < out[j].Tuple
		}
		return out[i].Cell.Attr < out[j].Cell.Attr
	})
	return out
}

// validateFeedback checks a feedback batch against ds: every cell must be
// in range, every confirmed value non-empty (the dataset dictionary
// interns the empty string as the Null value, which cannot be a confirmed
// observation), and no cell may appear twice — neither within the batch
// nor against the already-confirmed set. Duplicates are an error rather
// than last-write-wins: a confirmation is a ground-truth assertion, and
// two of them for one cell is a contradiction the caller must resolve.
func validateFeedback(ds *Dataset, fb []Feedback, confirmed map[Cell]bool) error {
	seen := make(map[Cell]bool, len(fb))
	for _, f := range fb {
		if f.Cell.Tuple < 0 || f.Cell.Tuple >= ds.NumTuples() ||
			f.Cell.Attr < 0 || f.Cell.Attr >= ds.NumAttrs() {
			return fmt.Errorf("%w: cell %+v out of range", ErrInvalidFeedback, f.Cell)
		}
		// Interning "" yields dataset.Null; check the string directly so
		// validation never grows the dictionary on a rejected batch.
		if f.Value == "" {
			return fmt.Errorf("%w: cell %+v has empty value (interns to Null)", ErrInvalidFeedback, f.Cell)
		}
		if seen[f.Cell] {
			return fmt.Errorf("%w: duplicate confirmation for cell %+v within the batch", ErrInvalidFeedback, f.Cell)
		}
		if confirmed[f.Cell] {
			return fmt.Errorf("%w: cell %+v already has confirmed feedback", ErrInvalidFeedback, f.Cell)
		}
		seen[f.Cell] = true
	}
	return nil
}

// CleanWithFeedback re-runs the pipeline with user-confirmed values:
// each confirmed cell is set to its confirmed value, excluded from the
// noisy set, and force-included as labeled evidence for weight learning.
// The input dataset is not modified. Feedback must be non-contradictory:
// an empty confirmed value or two confirmations for the same cell is an
// error.
func (cl *Cleaner) CleanWithFeedback(ds *Dataset, constraints []*Constraint, feedback []Feedback) (*Result, error) {
	if len(feedback) == 0 {
		return cl.Clean(ds, constraints)
	}
	if err := validateFeedback(ds, feedback, nil); err != nil {
		return nil, err
	}
	work := ds.Clone()
	trusted := make([]dataset.Cell, 0, len(feedback))
	for _, f := range feedback {
		work.SetString(f.Cell.Tuple, f.Cell.Attr, f.Value)
		trusted = append(trusted, f.Cell)
	}
	sub := *cl
	sub.trusted = trusted
	return sub.Clean(work, constraints)
}

// Feedback applies user confirmations to the session — the serving-side
// half of the Section 2.2 loop over LowConfidenceRepairs. Each confirmed
// cell is set to its confirmed value, permanently leaves the noisy set,
// and is force-included as labeled evidence whenever weights are
// (re)learned. The confirmations take effect immediately through a full
// pipeline pass (the CleanWithFeedback path); the round counts toward the
// Options.RelearnEvery schedule, so weights are retrained when it is due
// and reused by tying key otherwise.
//
// The batch is validated up front (in-range cells, non-empty values, no
// duplicate against the batch or earlier confirmations) and rejected
// whole on any violation (ErrInvalidFeedback): no value is written, no
// state changes. If the pipeline itself fails after validation, the
// confirmations stay staged coherently — the written values are marked
// touched like any other pending mutation, so a later Reclean applies
// them.
func (s *Session) Feedback(fb []Feedback) (*Result, error) {
	if len(fb) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalidFeedback)
	}
	if !s.cleaned {
		if _, err := s.Clean(); err != nil {
			return nil, err
		}
	}
	if err := validateFeedback(s.ds, fb, s.confirmedSet()); err != nil {
		return nil, err
	}
	for _, f := range fb {
		s.ds.SetString(f.Cell.Tuple, f.Cell.Attr, f.Value)
		s.touched[f.Cell.Tuple] = true
		s.confirmed = append(s.confirmed, f)
	}
	s.recleans++
	relearn := s.opts.RelearnEvery > 0 && s.recleans%s.opts.RelearnEvery == 0
	return s.runFull(relearn)
}

// Confirmed returns the session's accumulated feedback in confirmation
// order (a copy; the session is unaffected by mutations of it).
func (s *Session) Confirmed() []Feedback {
	return append([]Feedback(nil), s.confirmed...)
}

// ConfirmedCount reports the number of accumulated confirmations
// without copying them.
func (s *Session) ConfirmedCount() int { return len(s.confirmed) }

// confirmedSet is the confirmed-cell membership view of s.confirmed.
func (s *Session) confirmedSet() map[Cell]bool {
	out := make(map[Cell]bool, len(s.confirmed))
	for _, f := range s.confirmed {
		out[f.Cell] = true
	}
	return out
}
