package holoclean

import (
	"fmt"
	"sort"

	"holoclean/internal/dataset"
)

// Feedback is a user-confirmed cell value — the raw material of the
// paper's Section 2.2 feedback loop: "we can ask users to verify repairs
// with low marginal probabilities and use those as labeled examples to
// retrain the parameters of HoloClean's model".
type Feedback struct {
	Cell  Cell
	Value string
}

// LowConfidenceRepairs returns the proposed repairs whose marginal
// probability is below threshold, ordered by ascending confidence — the
// repairs worth soliciting user verification for.
func (r *Result) LowConfidenceRepairs(threshold float64) []Repair {
	var out []Repair
	for _, rep := range r.Repairs {
		if rep.Probability < threshold {
			out = append(out, rep)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Probability < out[j].Probability })
	return out
}

// CleanWithFeedback re-runs the pipeline with user-confirmed values:
// each confirmed cell is set to its confirmed value, excluded from the
// noisy set, and force-included as labeled evidence for weight learning.
// The input dataset is not modified.
func (cl *Cleaner) CleanWithFeedback(ds *Dataset, constraints []*Constraint, feedback []Feedback) (*Result, error) {
	if len(feedback) == 0 {
		return cl.Clean(ds, constraints)
	}
	work := ds.Clone()
	trusted := make([]dataset.Cell, 0, len(feedback))
	for _, f := range feedback {
		if f.Cell.Tuple < 0 || f.Cell.Tuple >= work.NumTuples() ||
			f.Cell.Attr < 0 || f.Cell.Attr >= work.NumAttrs() {
			return nil, fmt.Errorf("holoclean: feedback cell %+v out of range", f.Cell)
		}
		work.SetString(f.Cell.Tuple, f.Cell.Attr, f.Value)
		trusted = append(trusted, f.Cell)
	}
	sub := *cl
	sub.trusted = trusted
	return sub.Clean(work, constraints)
}
