package holoclean

import (
	"fmt"
	"math/rand"
	"testing"

	"holoclean/internal/datagen"
	"holoclean/internal/dataset"
	"holoclean/internal/ddlog"
	"holoclean/internal/gibbs"
	"holoclean/internal/pruning"
)

// requireIdenticalResults asserts byte-identical repairs and marginals —
// the Session equivalence contract: an incremental Reclean must be
// indistinguishable from a from-scratch Clean of the mutated dataset run
// with the same weights.
func requireIdenticalResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !want.Repaired.Equal(got.Repaired) {
		t.Fatalf("%s: repaired datasets differ", label)
	}
	if len(got.Repairs) != len(want.Repairs) {
		t.Fatalf("%s: repair counts differ: got %d, want %d", label, len(got.Repairs), len(want.Repairs))
	}
	for i := range want.Repairs {
		if got.Repairs[i] != want.Repairs[i] {
			t.Fatalf("%s: repair %d differs:\ngot  %+v\nwant %+v", label, i, got.Repairs[i], want.Repairs[i])
		}
	}
	if len(got.Marginals) != len(want.Marginals) {
		t.Fatalf("%s: marginal counts differ: got %d, want %d", label, len(got.Marginals), len(want.Marginals))
	}
	for c, wd := range want.Marginals {
		gd := got.Marginals[c]
		if len(gd) != len(wd) {
			t.Fatalf("%s: marginal of %v has support %d, want %d", label, c, len(gd), len(wd))
		}
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("%s: marginal of %v differs at %d: %v vs %v", label, c, i, gd[i], wd[i])
			}
		}
	}
}

// mutateSession applies a ~frac tuple mutation: each picked tuple gets
// one attribute from attrs overwritten with a value drawn from another
// tuple's same attribute (the cross-duplication noise the hospital
// generator uses).
func mutateSession(t *testing.T, s *Session, rng *rand.Rand, frac float64, attrs []int) int {
	t.Helper()
	n := s.NumTuples()
	count := int(float64(n)*frac + 0.5)
	if count < 1 {
		count = 1
	}
	ds := s.Dataset()
	for k := 0; k < count; k++ {
		tup := rng.Intn(n)
		row := make([]string, ds.NumAttrs())
		for a := range row {
			row[a] = ds.GetString(tup, a)
		}
		a := attrs[rng.Intn(len(attrs))]
		row[a] = ds.GetString(rng.Intn(n), a)
		if _, err := s.Upsert(tup, row); err != nil {
			t.Fatal(err)
		}
	}
	return count
}

// TestSessionRecleanMatchesFullCleanHospital is the acceptance property
// test: on the hospital workload, a 1% tuple mutation followed by
// Reclean produces byte-identical repairs and marginals to a full Clean
// of the mutated dataset (sharing the session's learned weights), while
// executing strictly fewer shards — across worker-pool sizes.
func TestSessionRecleanMatchesFullCleanHospital(t *testing.T) {
	g := datagen.Hospital(datagen.Config{Tuples: 600, Seed: 7})
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		s, err := NewSession(g.Dirty, g.Constraints, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Clean(); err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(int64(workers)))
		// Mutate FD-covered identity attributes (provider, name, phone,
		// measure), the error mechanism the generator itself uses.
		mutateSession(t, s, rng, 0.01, []int{0, 1, 9, 14, 15})

		incr, err := s.Reclean()
		if err != nil {
			t.Fatal(err)
		}
		refOpts := opts
		refOpts.InitialWeights = s.Weights()
		ref, err := New(refOpts).Clean(s.Dataset(), g.Constraints)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalResults(t, fmt.Sprintf("workers=%d", workers), incr, ref)
		if incr.Stats.Shards >= ref.Stats.Shards {
			t.Errorf("workers=%d: executed %d shards, want strictly fewer than the full plan's %d",
				workers, incr.Stats.Shards, ref.Stats.Shards)
		}
		if incr.Stats.ShardsReused == 0 {
			t.Errorf("workers=%d: ShardsReused = 0, want > 0", workers)
		}
		if ref.Stats.ShardsReused != 0 {
			t.Errorf("workers=%d: full Clean reported ShardsReused = %d", workers, ref.Stats.ShardsReused)
		}
	}
}

// sessionFixture builds a multi-group conflicted dataset whose violations
// split into many components. It deliberately has no constant column:
// appending or deleting a tuple would change Pr[· | constant] for every
// cell and correctly invalidate the whole model (see ARCHITECTURE.md),
// which would defeat the locality this fixture is meant to exercise.
func sessionFixture(groups int) (*Dataset, []*Constraint) {
	ds := NewDataset([]string{"Key", "Val"})
	for g := 0; g < groups; g++ {
		k := fmt.Sprintf("k%03d", g)
		good := fmt.Sprintf("v%03d", g)
		for i := 0; i < 4; i++ {
			ds.Append([]string{k, good})
		}
		ds.Append([]string{k, fmt.Sprintf("bad%03d", g)})
	}
	return ds, FD("fd", []string{"Key"}, []string{"Val"})
}

// TestSessionUpsertDeleteAppendEquivalence drives a session through
// updates, appends, and deletes over several recleans, checking the
// equivalence contract after every batch.
func TestSessionUpsertDeleteAppendEquivalence(t *testing.T) {
	ds, cs := sessionFixture(30)
	opts := DefaultOptions()
	opts.Workers = 2
	s, err := NewSession(ds, cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Clean(); err != nil {
		t.Fatal(err)
	}
	weights := s.Weights()

	batches := []func(){
		func() { // in-place update introducing a fresh conflict
			s.Upsert(7, []string{"k001", "bad-new"})
		},
		func() { // append two tuples, one clean, one conflicted
			s.Upsert(-1, []string{"k900", "v900"})
			s.Upsert(-1, []string{"k002", "bad902"})
		},
		func() { // delete a conflicted tuple and repair another by hand
			s.Delete(4) // the bad tuple of group 0
			s.Upsert(9, []string{"k001", "v001"})
		},
	}
	for bi, apply := range batches {
		apply()
		incr, err := s.Reclean()
		if err != nil {
			t.Fatal(err)
		}
		refOpts := opts
		refOpts.InitialWeights = weights
		ref, err := New(refOpts).Clean(s.Dataset(), cs)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalResults(t, fmt.Sprintf("batch %d", bi), incr, ref)
		if incr.Stats.Shards >= ref.Stats.Shards {
			t.Errorf("batch %d: executed %d of %d planned shards, want fewer",
				bi, incr.Stats.Shards, ref.Stats.Shards)
		}
	}
}

// TestSessionCoupledVariantEquivalence repeats the contract for a model
// with correlation factors, where shards are conflict components and
// reuse is per component (composition-matched) instead of per cell.
func TestSessionCoupledVariantEquivalence(t *testing.T) {
	ds, cs := sessionFixture(12)
	opts := DefaultOptions()
	opts.Variant = VariantDCFeatsFactors
	s, err := NewSession(ds, cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Clean(); err != nil {
		t.Fatal(err)
	}
	s.Upsert(2, []string{"k000", "bad-x"}) // dirty exactly one conflict group
	incr, err := s.Reclean()
	if err != nil {
		t.Fatal(err)
	}
	refOpts := opts
	refOpts.InitialWeights = s.Weights()
	ref, err := New(refOpts).Clean(s.Dataset(), cs)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "coupled", incr, ref)
	if incr.Stats.ShardsReused == 0 {
		t.Errorf("coupled: no component shards reused")
	}
}

// TestSessionNoopReclean pins the degenerate delta: recleaning with no
// pending mutations executes zero shards and reproduces the previous
// result.
func TestSessionNoopReclean(t *testing.T) {
	ds, cs := sessionFixture(10)
	s, err := NewSession(ds, cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Clean()
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Reclean()
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "noop", again, first)
	if again.Stats.Shards != 0 {
		t.Errorf("noop reclean executed %d shards, want 0", again.Stats.Shards)
	}
	if again.Stats.ShardsReused != first.Stats.Shards {
		t.Errorf("noop reclean reused %d shards, want %d", again.Stats.ShardsReused, first.Stats.Shards)
	}
}

// TestSessionRelearnEvery checks the relearn knob: with RelearnEvery = 1
// every Reclean relearns from scratch, making it byte-identical to a
// plain Clean of the mutated dataset including fresh weight learning.
func TestSessionRelearnEvery(t *testing.T) {
	ds, cs := sessionFixture(10)
	opts := DefaultOptions()
	opts.RelearnEvery = 1
	s, err := NewSession(ds, cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Clean(); err != nil {
		t.Fatal(err)
	}
	s.Upsert(3, []string{"k001", "bad-y"})
	incr, err := s.Reclean()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(DefaultOptions()).Clean(s.Dataset(), cs)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "relearn", incr, ref)
	if incr.Stats.LearnTime == 0 {
		t.Errorf("relearn round skipped learning")
	}
}

// TestSessionDeleteOutOfRange exercises mutator validation.
func TestSessionMutatorValidation(t *testing.T) {
	ds, cs := sessionFixture(2)
	s, err := NewSession(ds, cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(99); err == nil {
		t.Errorf("Delete out of range should fail")
	}
	if _, err := s.Upsert(0, []string{"just-one"}); err == nil {
		t.Errorf("Upsert with wrong arity should fail")
	}
	if _, err := s.Upsert(77, []string{"a", "b"}); err == nil {
		t.Errorf("Upsert far out of range should fail")
	}
}

// TestResolveGibbsZeroBurnIn is the regression test for the burn-in
// coercion bug: an explicit zero burn-in must mean zero sweeps discarded,
// not silently fall back to the default 10.
func TestResolveGibbsZeroBurnIn(t *testing.T) {
	o := DefaultOptions()
	o.GibbsBurnIn = 0
	if burn, _ := resolveGibbs(o); burn != 0 {
		t.Errorf("explicit zero burn-in resolved to %d, want 0", burn)
	}
	o.GibbsBurnIn = -3
	if burn, _ := resolveGibbs(o); burn != 0 {
		t.Errorf("negative burn-in resolved to %d, want 0 (clamped)", burn)
	}
	o.GibbsBurnIn = 7
	o.GibbsSamples = 0
	burn, samples := resolveGibbs(o)
	if burn != 7 || samples != 50 {
		t.Errorf("resolveGibbs(7, 0) = (%d, %d), want (7, 50)", burn, samples)
	}
}

// TestParallelVarSeedsMixedEvidence is the regression test for the
// VarSeed indexing bug: on a grounded graph holding both evidence and
// query variables, seeds must be indexed by graph variable id (evidence
// entries zero), and sampling with them must neither panic nor depend on
// how many evidence variables precede a query variable.
func TestParallelVarSeedsMixedEvidence(t *testing.T) {
	ds := NewDataset([]string{"A", "B"})
	ds.Append([]string{"x", "1"})
	ds.Append([]string{"x", "2"})
	ds.Append([]string{"x", "1"})
	noisy := []dataset.Cell{{Tuple: 1, Attr: 1}}
	one := ds.Dict().Intern("1")
	two := ds.Dict().Intern("2")
	db := &ddlog.Database{
		DS: ds,
		Domains: &pruning.Domains{
			Cells:      noisy,
			Candidates: [][]dataset.Value{{one, two}},
		},
		// Evidence variables precede nothing in the domain list but are
		// appended after query variables during grounding, exercising the
		// mixed layout.
		Evidence:        []dataset.Cell{{Tuple: 0, Attr: 1}, {Tuple: 2, Attr: 1}},
		EvidenceDomains: [][]dataset.Value{{one, two}, {one, two}},
	}
	prog := &ddlog.Program{}
	prog.Add(&ddlog.Rule{Kind: ddlog.RandomVariables, Name: "variables"})
	prog.Add(&ddlog.Rule{Kind: ddlog.MinimalityFactors, Name: "minimality", FixedWeight: 0.5})
	g, err := ddlog.Ground(db, prog, ddlog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.EvidenceVars == 0 || g.Stats.QueryVars == 0 {
		t.Fatalf("fixture did not produce a mixed graph: %+v", g.Stats)
	}
	seeds := parallelVarSeeds(g, 1, ds.NumAttrs())
	if len(seeds) != len(g.Graph.Vars) {
		t.Fatalf("seed slice len %d, want one per variable %d", len(seeds), len(g.Graph.Vars))
	}
	for vi := range g.Graph.Vars {
		if g.Graph.Vars[vi].Evidence {
			if seeds[vi] != 0 {
				t.Errorf("evidence variable %d got seed %d, want 0", vi, seeds[vi])
			}
			continue
		}
		want := chainSeed(1, g.Cells[vi], ds.NumAttrs())
		if seeds[vi] != want {
			t.Errorf("query variable %d seeded %d, want identity seed %d", vi, seeds[vi], want)
		}
	}
	// Sampling with per-variable seeds over the mixed graph must work and
	// be deterministic.
	run := func() []float64 {
		m := gibbs.Run(g.Graph, gibbs.Config{BurnIn: 0, Samples: 25, Seed: 1, Parallel: true, VarSeed: seeds})
		var out []float64
		for vi := range g.Graph.Vars {
			for d := range g.Graph.Vars[vi].Domain {
				out = append(out, m.Prob(int32(vi), d))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mixed-graph sampling not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPhaseTimesWithinTotal is the regression test for the timing
// mis-attribution: with a single worker, the per-phase clocks (which now
// include shared-index construction in CompileTime) must sum to at most
// the total wall clock.
func TestPhaseTimesWithinTotal(t *testing.T) {
	g := datagen.Hospital(datagen.Config{Tuples: 200, Seed: 3})
	opts := DefaultOptions()
	opts.Workers = 1
	res, err := New(opts).Clean(g.Dirty, g.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	phases := s.DetectTime + s.CompileTime + s.LearnTime + s.InferTime
	if phases > s.TotalTime {
		t.Errorf("phase times sum to %v > TotalTime %v (Detect %v Compile %v Learn %v Infer %v)",
			phases, s.TotalTime, s.DetectTime, s.CompileTime, s.LearnTime, s.InferTime)
	}
	if s.CompileTime <= 0 {
		t.Errorf("CompileTime not populated")
	}
}
