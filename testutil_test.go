package holoclean

import (
	"testing"

	"holoclean/internal/violation"
)

// violationsCounter counts denial-constraint violations on a dataset,
// shared by pipeline-invariant tests.
type violationsCounter struct{}

func (violationsCounter) count(t *testing.T, ds *Dataset, cs []*Constraint) int {
	t.Helper()
	det, err := violation.NewDetector(ds, cs)
	if err != nil {
		t.Fatal(err)
	}
	return len(det.Detect())
}
